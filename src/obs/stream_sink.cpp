#include "obs/stream_sink.hpp"

#include "common/check.hpp"
#include "common/json.hpp"
#include "obs/event_bus.hpp"

namespace smiless::obs {

StreamSink::StreamSink(std::ostream* out) : out_(out) { SMILESS_CHECK(out_ != nullptr); }

void StreamSink::attach(EventBus& bus) {
  bus.add_sink([this](const Event& e) { write(e); });
}

void StreamSink::write(const Event& e) {
  json::Value line = json::Value::object();
  line["type"] = json::Value(event_type_name(e.type));
  line["t"] = json::Value(e.t);
  if (e.t2 != 0.0) line["t2"] = json::Value(e.t2);
  if (e.app >= 0) line["app"] = json::Value(e.app);
  if (e.node >= 0) line["node"] = json::Value(e.node);
  if (e.request >= 0) line["request"] = json::Value(e.request);
  if (e.instance >= 0) line["instance"] = json::Value(e.instance);
  if (e.machine >= 0) line["machine"] = json::Value(e.machine);
  if (e.value != 0.0) line["value"] = json::Value(e.value);
  if (e.count != 0) line["count"] = json::Value(e.count);
  *out_ << line.dump() << '\n';
  out_->flush();  // live tailing is the point; one flush per event
  ++lines_;
}

}  // namespace smiless::obs
