#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace smiless::dag {

using NodeId = int;

/// A fork/join substructure: `fork` has >= 2 outgoing branches that all
/// reconverge at `join`. `branches` holds the interior node sequences of each
/// branch (possibly empty when fork connects to join directly). The Workflow
/// Manager processes these smallest-first when recombining subgraph
/// solutions (§V-C2).
struct ForkJoin {
  NodeId fork = -1;
  NodeId join = -1;
  std::vector<std::vector<NodeId>> branches;
  /// Total interior node count — the "size" used to order substructures.
  std::size_t interior_size() const;
};

/// Directed acyclic graph with named nodes. This is the in-memory
/// representation of an ML serving application's workflow: each node is one
/// inference function, each edge a data dependency.
class Dag {
 public:
  /// Add a node; names must be unique and non-empty.
  NodeId add_node(std::string name);

  /// Add edge u -> v. Rejects self-loops, duplicate edges, and edges that
  /// would create a cycle.
  void add_edge(NodeId u, NodeId v);

  std::size_t size() const { return names_.size(); }
  const std::string& name(NodeId n) const;
  /// Node id for `name`; -1 if absent.
  NodeId find(const std::string& name) const;

  std::span<const NodeId> successors(NodeId n) const;
  std::span<const NodeId> predecessors(NodeId n) const;
  std::size_t in_degree(NodeId n) const { return predecessors(n).size(); }
  std::size_t out_degree(NodeId n) const { return successors(n).size(); }

  /// Nodes with no predecessors / no successors.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// Topological order (Kahn). Stable: ties broken by insertion order.
  std::vector<NodeId> topo_order() const;

  bool is_reachable(NodeId from, NodeId to) const;

  /// All simple source->sink paths (node sequences). The applications served
  /// here have at most a handful of branches, so enumeration is cheap. This
  /// is the decomposition the Workflow Manager feeds to the Strategy
  /// Optimizer: each path is a purely sequential chain.
  std::vector<std::vector<NodeId>> all_paths() const;

  /// End-to-end latency given per-node weights: parallel branches overlap,
  /// so this is the longest (max-weight) source->sink path sum.
  double critical_path_weight(std::span<const double> node_weights) const;

  /// Node sequence of the longest path by node count (ties by weight 1).
  std::vector<NodeId> longest_path() const;

  /// All fork/join substructures, smallest interior first (§V-C2 combining
  /// order). Only reports pairs where every path out of `fork` reaches
  /// `join` and at least two branches exist.
  std::vector<ForkJoin> fork_join_pairs() const;

  /// Graphviz DOT rendering, for documentation and debugging.
  std::string to_dot(const std::string& graph_name = "app") const;

 private:
  bool would_create_cycle(NodeId u, NodeId v) const;

  std::vector<std::string> names_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
};

}  // namespace smiless::dag
