#include "dag/dag.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/check.hpp"

namespace smiless::dag {

std::size_t ForkJoin::interior_size() const {
  std::size_t n = 0;
  for (const auto& b : branches) n += b.size();
  return n;
}

NodeId Dag::add_node(std::string name) {
  SMILESS_CHECK_MSG(!name.empty(), "node name must be non-empty");
  SMILESS_CHECK_MSG(find(name) < 0, "duplicate node name: " << name);
  names_.push_back(std::move(name));
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

void Dag::add_edge(NodeId u, NodeId v) {
  SMILESS_CHECK(u >= 0 && static_cast<std::size_t>(u) < size());
  SMILESS_CHECK(v >= 0 && static_cast<std::size_t>(v) < size());
  SMILESS_CHECK_MSG(u != v, "self loop on " << names_[u]);
  SMILESS_CHECK_MSG(std::find(succ_[u].begin(), succ_[u].end(), v) == succ_[u].end(),
                    "duplicate edge " << names_[u] << " -> " << names_[v]);
  SMILESS_CHECK_MSG(!would_create_cycle(u, v),
                    "edge " << names_[u] << " -> " << names_[v] << " creates a cycle");
  succ_[u].push_back(v);
  pred_[v].push_back(u);
}

bool Dag::would_create_cycle(NodeId u, NodeId v) const {
  // A cycle appears iff u is reachable from v.
  return is_reachable(v, u);
}

const std::string& Dag::name(NodeId n) const {
  SMILESS_CHECK(n >= 0 && static_cast<std::size_t>(n) < size());
  return names_[n];
}

NodeId Dag::find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<NodeId>(i);
  return -1;
}

std::span<const NodeId> Dag::successors(NodeId n) const {
  SMILESS_CHECK(n >= 0 && static_cast<std::size_t>(n) < size());
  return succ_[n];
}

std::span<const NodeId> Dag::predecessors(NodeId n) const {
  SMILESS_CHECK(n >= 0 && static_cast<std::size_t>(n) < size());
  return pred_[n];
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < size(); ++i)
    if (pred_[i].empty()) out.push_back(static_cast<NodeId>(i));
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < size(); ++i)
    if (succ_[i].empty()) out.push_back(static_cast<NodeId>(i));
  return out;
}

std::vector<NodeId> Dag::topo_order() const {
  std::vector<std::size_t> indeg(size());
  for (std::size_t i = 0; i < size(); ++i) indeg[i] = pred_[i].size();
  std::deque<NodeId> ready;
  for (std::size_t i = 0; i < size(); ++i)
    if (indeg[i] == 0) ready.push_back(static_cast<NodeId>(i));
  std::vector<NodeId> order;
  order.reserve(size());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (NodeId s : succ_[n])
      if (--indeg[s] == 0) ready.push_back(s);
  }
  SMILESS_CHECK_MSG(order.size() == size(), "graph contains a cycle");
  return order;
}

bool Dag::is_reachable(NodeId from, NodeId to) const {
  if (from < 0 || to < 0) return false;
  if (from == to) return true;
  std::vector<bool> seen(size(), false);
  std::deque<NodeId> work{from};
  seen[from] = true;
  while (!work.empty()) {
    const NodeId n = work.front();
    work.pop_front();
    for (NodeId s : succ_[n]) {
      if (s == to) return true;
      if (!seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
  }
  return false;
}

std::vector<std::vector<NodeId>> Dag::all_paths() const {
  std::vector<std::vector<NodeId>> paths;
  std::vector<NodeId> cur;
  // Depth-first enumeration from every source.
  auto dfs = [&](auto&& self, NodeId n) -> void {
    cur.push_back(n);
    if (succ_[n].empty()) {
      paths.push_back(cur);
    } else {
      for (NodeId s : succ_[n]) self(self, s);
    }
    cur.pop_back();
  };
  for (NodeId s : sources()) dfs(dfs, s);
  return paths;
}

double Dag::critical_path_weight(std::span<const double> node_weights) const {
  SMILESS_CHECK(node_weights.size() == size());
  std::vector<double> best(size(), 0.0);
  for (NodeId n : topo_order()) {
    double in = 0.0;
    for (NodeId p : pred_[n]) in = std::max(in, best[p]);
    best[n] = in + node_weights[n];
  }
  double out = 0.0;
  for (double b : best) out = std::max(out, b);
  return out;
}

std::vector<NodeId> Dag::longest_path() const {
  std::vector<double> depth(size(), 1.0);
  std::vector<NodeId> via(size(), -1);
  for (NodeId n : topo_order()) {
    for (NodeId p : pred_[n]) {
      if (depth[p] + 1.0 > depth[n]) {
        depth[n] = depth[p] + 1.0;
        via[n] = p;
      }
    }
  }
  NodeId tail = 0;
  for (std::size_t i = 1; i < size(); ++i)
    if (depth[i] > depth[tail]) tail = static_cast<NodeId>(i);
  std::vector<NodeId> path;
  for (NodeId n = tail; n >= 0; n = via[n]) path.push_back(n);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<ForkJoin> Dag::fork_join_pairs() const {
  std::vector<ForkJoin> out;
  for (std::size_t f = 0; f < size(); ++f) {
    const auto fork = static_cast<NodeId>(f);
    if (out_degree(fork) < 2) continue;
    // Candidate joins: nodes with in-degree >= 2 reachable from fork.
    for (std::size_t j = 0; j < size(); ++j) {
      const auto join = static_cast<NodeId>(j);
      if (join == fork || in_degree(join) < 2) continue;
      if (!is_reachable(fork, join)) continue;

      // Collect, per fork-successor, the interior path(s) that reach join.
      // Accept the pair only if every successor of fork leads to join.
      std::vector<std::vector<NodeId>> branches;
      bool all_reach = true;
      for (NodeId s : succ_[fork]) {
        if (s == join) {
          branches.push_back({});
          continue;
        }
        if (!is_reachable(s, join)) {
          all_reach = false;
          break;
        }
        // Walk the (assumed simple) branch from s to join.
        std::vector<NodeId> branch;
        NodeId cur = s;
        bool ok = true;
        while (cur != join) {
          branch.push_back(cur);
          NodeId next = -1;
          for (NodeId t : succ_[cur]) {
            if (t == join || is_reachable(t, join)) {
              next = t;
              break;
            }
          }
          if (next < 0 || branch.size() > size()) {
            ok = false;
            break;
          }
          cur = next;
        }
        if (!ok) {
          all_reach = false;
          break;
        }
        branches.push_back(std::move(branch));
      }
      if (all_reach && branches.size() >= 2) {
        out.push_back({fork, join, std::move(branches)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ForkJoin& a, const ForkJoin& b) { return a.interior_size() < b.interior_size(); });
  return out;
}

std::string Dag::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  for (std::size_t i = 0; i < size(); ++i)
    os << "  n" << i << " [label=\"" << names_[i] << "\"];\n";
  for (std::size_t u = 0; u < size(); ++u)
    for (NodeId v : succ_[u]) os << "  n" << u << " -> n" << v << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace smiless::dag
