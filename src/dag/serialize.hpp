#pragma once

#include <string>

#include "dag/dag.hpp"

namespace smiless::dag {

/// Plain-text DAG format (one directive per line; '#' starts a comment):
///
///   node <name>
///   edge <from-name> <to-name>
///
/// Nodes must be declared before edges reference them. This is the wire
/// format a developer submits workflows in (the NetworkX-file equivalent of
/// the paper's deployment flow).
std::string to_text(const Dag& dag);

/// Parse the format above; throws CheckError on malformed input, unknown
/// node references, duplicates or cycles.
Dag from_text(const std::string& text);

}  // namespace smiless::dag
