#include "dag/serialize.hpp"

#include <sstream>

#include "common/check.hpp"

namespace smiless::dag {

std::string to_text(const Dag& dag) {
  std::ostringstream os;
  for (std::size_t n = 0; n < dag.size(); ++n)
    os << "node " << dag.name(static_cast<NodeId>(n)) << "\n";
  for (std::size_t u = 0; u < dag.size(); ++u)
    for (NodeId v : dag.successors(static_cast<NodeId>(u)))
      os << "edge " << dag.name(static_cast<NodeId>(u)) << " " << dag.name(v) << "\n";
  return os.str();
}

Dag from_text(const std::string& text) {
  Dag dag;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank / comment-only line

    if (directive == "node") {
      std::string name;
      SMILESS_CHECK_MSG(static_cast<bool>(ls >> name), "line " << line_no << ": node needs a name");
      dag.add_node(name);
    } else if (directive == "edge") {
      std::string from, to;
      SMILESS_CHECK_MSG(static_cast<bool>(ls >> from >> to),
                        "line " << line_no << ": edge needs two node names");
      const NodeId u = dag.find(from);
      const NodeId v = dag.find(to);
      SMILESS_CHECK_MSG(u >= 0, "line " << line_no << ": unknown node " << from);
      SMILESS_CHECK_MSG(v >= 0, "line " << line_no << ": unknown node " << to);
      dag.add_edge(u, v);
    } else {
      SMILESS_CHECK_MSG(false, "line " << line_no << ": unknown directive " << directive);
    }
  }
  return dag;
}

}  // namespace smiless::dag
