#pragma once

#include "common/units.hpp"

namespace smiless::sim {

/// The time-source seam of a driver (DESIGN.md §16). A Clock decides when a
/// simulation instant `t` is allowed to happen; the driver asks it before
/// firing each event batch. Two implementations exist:
///
///  - ImmediateClock (here) — simulated time is free, wait_until returns at
///    once. This is the discrete-event mode: the engine runs as fast as the
///    hardware allows and the wall clock never enters the picture.
///  - rt::WallClock (src/rt/wall_clock.hpp) — maps sim seconds onto wall
///    seconds through a speedup factor and sleeps until each instant's wall
///    deadline. This is the live-serving mode.
///
/// Contract: a Clock only *delays*; it never reorders, drops or inserts
/// work. The simulated trajectory is therefore a pure function of the
/// schedule regardless of which clock paces it — only wall-clock pacing
/// (and any wall-derived diagnostics) differ between clocks.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Called once when a drive begins, with the sim time it starts from.
  /// Pacing clocks anchor their wall epoch here; the default is a no-op.
  virtual void start(SimTime sim_now) { (void)sim_now; }

  /// Block until sim time `t` may happen. Returns false when the drive
  /// should stop early (e.g. an interrupt was requested) — the driver then
  /// abandons the pump without firing the batch at `t`.
  virtual bool wait_until(SimTime t) = 0;
};

/// The DES clock: no pacing, never interrupts.
class ImmediateClock final : public Clock {
 public:
  bool wait_until(SimTime) override { return true; }
};

}  // namespace smiless::sim
