#pragma once

#include "common/units.hpp"
#include "sim/clock.hpp"

namespace smiless::sim {

class Engine;

/// A source of externally-injected work — the driver-facing face of a trace
/// replayer (DESIGN.md §16). Drivers poll `next_time()` to learn when the
/// source next wants to act and call `inject_through(t)` no later than that
/// sim instant; the source then performs every injection due at or before
/// `t` (scheduling engine events at their arrival times, e.g. through the
/// Gateway intake). `flush()` injects everything left regardless of time —
/// the upfront-scheduling mode the classic DES run uses, and the end-of-
/// drive tail flush that keeps scheduled-event tallies identical between
/// streaming and upfront injection.
class WorkSource {
 public:
  virtual ~WorkSource() = default;

  /// Earliest sim time at which pending work wants injection; +infinity
  /// when the source is drained.
  virtual SimTime next_time() const = 0;

  /// Inject all work due at or before sim time `t` (in source order).
  virtual void inject_through(SimTime t) = 0;

  /// Inject everything remaining, regardless of due time.
  virtual void flush() = 0;
};

/// The driver seam: who pumps the engine's event queue, and against which
/// clock. Extracting this from the engine is what turns "a simulator" into
/// "a serving system with a simulation mode" — the Gateway, scheduler, pool
/// and ledger underneath are identical; only the pump differs.
///
///  - DesDriver (here) — the classic discrete-event pump: flush the source
///    upfront, then free-run the engine to the horizon. Byte-identical to
///    the pre-seam Engine::run_until path.
///  - rt::RealTimeDriver (src/rt/driver.hpp) — pumps the same queue one
///    event batch at a time, pacing each batch against a Clock and
///    streaming injections in as their due times arrive.
///
/// Contract: on return (unless the clock interrupted the drive) the
/// engine's clock reads `end` and every event with time <= end has fired.
class Driver {
 public:
  virtual ~Driver() = default;

  virtual const char* name() const = 0;

  /// Pump `engine` to sim time `end`, injecting from `source` (nullable)
  /// no later than each injection's due time.
  virtual void drive(Engine& engine, WorkSource* source, SimTime end) = 0;
};

/// The discrete-event driver: schedule everything upfront, run flat out.
class DesDriver final : public Driver {
 public:
  const char* name() const override { return "des"; }
  void drive(Engine& engine, WorkSource* source, SimTime end) override;
};

}  // namespace smiless::sim
