#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/slab.hpp"
#include "common/units.hpp"

namespace smiless::sim {

using EventId = std::uint64_t;

/// Internal tallies of the calendar structure itself (resizes, fallback
/// searches). Bench-facing diagnostics; never part of the determinism
/// contract and never serialized into comparable artifacts.
struct CalendarStats {
  std::uint64_t resizes = 0;          ///< bucket-array rebuilds (grow + shrink)
  std::uint64_t direct_searches = 0;  ///< full-scan fallbacks after an empty year
  std::size_t buckets = 0;            ///< current bucket count
  std::size_t peak_live = 0;          ///< high-water mark of live events
};

/// Calendar queue (Brown 1988) for the DES hot path: the event set is
/// hashed into `buckets` by virtual bucket number vb = floor(t / width), so
/// with the width tuned to the local inter-event gap, schedule and pop are
/// O(1) amortized instead of the O(log n) of a binary heap — and, unlike
/// the heap+map pair it replaces, one structure holds everything: each
/// bucket node carries its timestamp, its EventId and its callback inline,
/// allocated from a slab (one freelist hit per event, no per-event
/// `std::map` node).
///
/// Ordering contract: events pop in strictly non-decreasing (time, id)
/// order. Equal timestamps share a virtual bucket by construction and each
/// bucket list is kept sorted by (time, id), so FIFO-among-simultaneous
/// falls out of the monotonic EventId — exactly the Engine's contract.
///
/// Cancellation: cancel(id) resolves the node through a flat open-addressed
/// id map and tombstones it in place (the callback is released immediately;
/// the node is reclaimed when it surfaces at a bucket head or at the next
/// resize). Tombstones are excluded from live() by construction.
///
/// Determinism: no hashing of pointers, no unordered iteration, no clocks —
/// every structure walk is over vectors or sorted lists, and the bucket
/// geometry is a pure function of the schedule/cancel/pop history.
class CalendarQueue {
 public:
  using Callback = std::function<void()>;

  CalendarQueue();
  ~CalendarQueue();

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  /// Insert an event. `id` must be unique among pending events (the Engine
  /// hands out monotonically increasing ids, which also carries the FIFO
  /// tie-break).
  void schedule(SimTime t, EventId id, Callback cb);

  /// Tombstone a pending event; returns false if `id` is not pending
  /// (already fired, already cancelled, or never scheduled).
  bool cancel(EventId id);

  /// If the earliest live event has time <= `end`, pop it into the out
  /// parameters and return true; otherwise (later event, or empty) leave
  /// them untouched and return false.
  bool pop_due(SimTime end, SimTime* t, EventId* id, Callback* cb);

  /// Time of the earliest live event, or +infinity when empty. Positions
  /// the pop cursor (and reclaims tombstoned bucket heads) exactly like
  /// pop_due, so a peek-then-pop pair costs one scan, not two. Used by
  /// pacing drivers to learn how long to wait; the DES path never calls it.
  SimTime next_time();

  /// Live (non-tombstoned) pending events.
  std::size_t live() const { return live_; }

  const CalendarStats& stats() const { return stats_; }

 private:
  struct Node {
    SimTime time = 0.0;
    std::uint64_t vb = 0;  ///< virtual bucket under the current geometry
    EventId id = 0;
    Node* next = nullptr;
    bool cancelled = false;
    Callback cb;
  };

  /// Flat open-addressed id -> node map (linear probing, power-of-two
  /// capacity, backward-shift deletion). EventId 0 marks an empty slot —
  /// the Engine's ids start at 1. Never iterated, so it cannot order
  /// anything (detlint unordered-iter does not apply to lookups).
  class IdMap {
   public:
    IdMap() { slots_.resize(kMinCapacity); }

    void put(EventId id, Node* node);
    Node* take(EventId id);  ///< erase + return, nullptr if absent
    std::size_t size() const { return size_; }

   private:
    struct Slot {
      EventId key = 0;
      Node* node = nullptr;
    };
    static constexpr std::size_t kMinCapacity = 64;

    std::size_t home(EventId id) const {
      // Fibonacci multiplicative hash: sequential ids spread uniformly.
      return static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ull) >>
                                      (64 - capacity_log2_)) &
             (slots_.size() - 1);
    }
    void grow();

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    unsigned capacity_log2_ = 6;  // log2(kMinCapacity)
  };

  /// A (time, id)-sorted singly-linked list with a tail pointer, so the
  /// common in-order insert (monotonic ids, same-timestamp bursts) is an
  /// O(1) append, plus a last-insert hint: a monotone run of inserts that
  /// lands mid-list (e.g. thousands of same-timestamp window ticks in a
  /// bucket that also holds later arrivals) chains each node after the
  /// previous one in O(1) instead of re-walking the prefix every time.
  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
    Node* hint = nullptr;  ///< last inserted node; cleared when unlinked
  };

  std::uint64_t vbucket(SimTime t) const;
  void insert_node(Node* node);
  void unlink_free_cancelled_head(std::size_t idx);
  /// Position the cursor at the globally earliest live event and return it
  /// (with its physical bucket index in *idx); nullptr when live_ == 0.
  Node* find_earliest(std::size_t* idx);
  void resize(std::size_t new_buckets);
  void maybe_grow();
  void maybe_shrink();
  /// Full scan fallback: point the cursor at the globally earliest live
  /// event. Pre: live_ > 0.
  void direct_search();

  // Bucket geometry. `cur_vb_` is the cursor: the virtual bucket the pop
  // scan is positioned at. Invariant: every live event has vb >= cur_vb_ or
  // the insert that violated it reset the cursor.
  std::vector<Bucket> buckets_;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::uint64_t cur_vb_ = 0;
  std::size_t total_nodes_ = 0;  ///< incl. tombstones still in buckets
  std::size_t live_ = 0;

  common::Slab<Node> slab_;
  IdMap ids_;
  CalendarStats stats_;

  static constexpr std::size_t kMinBuckets = 16;
  /// vb values are clamped here; anything that far out (e.g. an event at
  /// +inf) lives in the far-future bucket and is only reachable through
  /// direct_search, which compares times, not vb.
  static constexpr double kMaxVb = 4.0e18;  // < 2^62, safely castable
};

}  // namespace smiless::sim
