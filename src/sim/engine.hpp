#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/calendar_queue.hpp"

namespace smiless::prof {
class Profiler;
}

namespace smiless::sim {

class ReferenceQueue;

/// Lifetime counters over an Engine's event queue, surfaced through the
/// observability metric registry. Pure simulation-domain tallies —
/// identical for every QueueImpl by contract (the differential fuzz
/// harness asserts it).
struct EngineStats {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
};

/// Discrete-event simulation engine: a clock plus an ordered queue of
/// cancellable callbacks. Events at the same timestamp fire in scheduling
/// order, which makes whole experiments deterministic.
///
/// The queue behind the clock is selectable at construction:
///  - QueueImpl::Calendar (default) — the O(1)-amortized calendar queue
///    with slab-allocated nodes and inline callbacks (the hot path).
///  - QueueImpl::BinaryHeap — the original priority_queue + std::map pair,
///    kept as the reference model for differential testing and as the
///    baseline the throughput bench measures the calendar against.
/// Both produce bit-identical trajectories; the choice is a pure
/// performance knob.
class Engine {
 public:
  using Callback = std::function<void()>;

  enum class QueueImpl { Calendar, BinaryHeap };

  Engine();
  explicit Engine(QueueImpl impl);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute sim time `t` (>= now). Returns a handle
  /// usable with cancel(); the ContainerManager relies on this for pre-warm
  /// and keep-alive timers.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` seconds (>= 0).
  EventId schedule_after(double delay, Callback cb) {
    SMILESS_CHECK(delay >= 0.0);
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(EventId id);

  /// Run events until the queue is empty or the clock would pass `end`;
  /// leaves now() == end when it drains early.
  void run_until(SimTime end);

  /// Run until the queue drains completely.
  void run();

  /// Live pending events; cancelled (tombstoned) events are excluded.
  std::size_t pending() const;

  /// Sim time of the earliest live pending event, or +infinity when the
  /// queue is empty. Non-const because both queue impls reclaim tombstones
  /// on the way to the head — a trajectory-neutral side effect. This is
  /// the peek pacing drivers (DESIGN.md §16) use to decide how long to
  /// wait before the next batch; the DES pump never calls it.
  SimTime next_time();

  const EngineStats& stats() const { return stats_; }

  QueueImpl queue_impl() const {
    return ref_ != nullptr ? QueueImpl::BinaryHeap : QueueImpl::Calendar;
  }

  /// Calendar internals for the bench; null under QueueImpl::BinaryHeap.
  const CalendarStats* calendar_stats() const {
    return ref_ != nullptr ? nullptr : &calendar_.stats();
  }

  /// Attach (or detach, with nullptr) the runtime self-profiler. When set,
  /// run_until/schedule_at/cancel record wall-time scopes and the engine
  /// samples its internal stats (live events, EngineStats, CalendarStats)
  /// as deterministic sim-time counters every kSampleInterval fired events.
  /// Null means zero overhead beyond one pointer test per call.
  void set_profiler(prof::Profiler* p) { prof_ = p; }
  prof::Profiler* profiler() const { return prof_; }

  /// Counter-sampling cadence in fired events (power of two; the sample
  /// points depend only on the trajectory, never on the wall clock).
  static constexpr std::uint64_t kSampleInterval = 1ull << 14;

 private:
  void sample_counters(SimTime t);

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  EngineStats stats_;
  CalendarQueue calendar_;
  std::unique_ptr<ReferenceQueue> ref_;  ///< engaged iff QueueImpl::BinaryHeap
  prof::Profiler* prof_ = nullptr;       ///< optional self-profiler (not owned)
};

}  // namespace smiless::sim
