#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>

#include "common/check.hpp"
#include "common/units.hpp"

namespace smiless::sim {

using EventId = std::uint64_t;

/// Lifetime counters over an Engine's event queue, surfaced through the
/// observability metric registry. Pure simulation-domain tallies.
struct EngineStats {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
};

/// Discrete-event simulation engine: a clock plus an ordered queue of
/// cancellable callbacks. Events at the same timestamp fire in scheduling
/// order, which makes whole experiments deterministic.
class Engine {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute sim time `t` (>= now). Returns a handle
  /// usable with cancel(); the ContainerManager relies on this for pre-warm
  /// and keep-alive timers.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` seconds (>= 0).
  EventId schedule_after(double delay, Callback cb) {
    SMILESS_CHECK(delay >= 0.0);
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(EventId id);

  /// Run events until the queue is empty or the clock would pass `end`;
  /// leaves now() == end when it drains early.
  void run_until(SimTime end);

  /// Run until the queue drains completely.
  void run();

  std::size_t pending() const { return callbacks_.size(); }

  const EngineStats& stats() const { return stats_; }

 private:
  struct QueuedEvent {
    SimTime time;
    EventId id;
    bool operator>(const QueuedEvent& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;  // FIFO among simultaneous events
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  EngineStats stats_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue_;
  // Deterministic by construction (detlint ptr-key/unordered-iter catalog):
  // keyed by the monotonic EventId, so any future iteration is in schedule
  // order, not hash order. Lookups are O(log n) against ids that are mostly
  // near the front of the queue; the priority_queue dominates the hot path.
  std::map<EventId, Callback> callbacks_;
};

}  // namespace smiless::sim
