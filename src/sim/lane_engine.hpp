#pragma once

#include "sim/engine.hpp"

namespace smiless::sim {

/// LaneEngine — the facade one shard lane drives its private Engine through.
///
/// A sharded cell (DESIGN.md §14) runs K independent engines, one per lane,
/// and advances them in lockstep between window barriers. The facade narrows
/// the Engine surface to exactly what the barrier loop needs — step to a
/// barrier, read the clock, read the counters — and tags the engine with its
/// lane id so diagnostics and routing contexts can name the lane. Everything
/// that *schedules* work keeps talking to the underlying Engine via
/// engine(); only the lane driver steps the clock, which is what makes the
/// window-barrier protocol auditable in one place.
class LaneEngine {
 public:
  explicit LaneEngine(int lane, Engine::QueueImpl impl = Engine::QueueImpl::Calendar)
      : lane_(lane), engine_(impl) {}

  int lane() const { return lane_; }

  /// Advance this lane to the barrier time `t` (monotone: t >= now()).
  /// Returns the number of events fired by this step. After the call
  /// now() == t even if the lane drained early, so every lane observes the
  /// same clock at the barrier.
  std::uint64_t step_to(SimTime t) {
    SMILESS_CHECK(t >= engine_.now());
    const std::uint64_t before = engine_.stats().fired;
    engine_.run_until(t);
    return engine_.stats().fired - before;
  }

  SimTime now() const { return engine_.now(); }
  std::size_t pending() const { return engine_.pending(); }
  const EngineStats& stats() const { return engine_.stats(); }

  /// The lane's private engine, for wiring the lane's Platform/injector.
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

 private:
  int lane_;
  Engine engine_;
};

}  // namespace smiless::sim
