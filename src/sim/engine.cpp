#include "sim/engine.hpp"

#include <limits>

namespace smiless::sim {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  SMILESS_CHECK_MSG(t >= now_, "cannot schedule in the past: " << t << " < " << now_);
  SMILESS_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  ++stats_.scheduled;
  queue_.push({t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Engine::cancel(EventId id) {
  if (callbacks_.erase(id) == 0) return false;
  ++stats_.cancelled;
  return true;
}

void Engine::run_until(SimTime end) {
  SMILESS_CHECK(end >= now_);
  while (!queue_.empty()) {
    const QueuedEvent ev = queue_.top();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {  // cancelled
      queue_.pop();
      continue;
    }
    if (ev.time > end) break;
    queue_.pop();
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.time;
    ++stats_.fired;
    cb();
  }
  now_ = end;
}

void Engine::run() { run_until(std::numeric_limits<SimTime>::max()); }

}  // namespace smiless::sim
