#include "sim/engine.hpp"

#include <limits>
#include <utility>

#include "sim/reference_queue.hpp"

namespace smiless::sim {

Engine::Engine() = default;

Engine::Engine(QueueImpl impl) {
  if (impl == QueueImpl::BinaryHeap) ref_ = std::make_unique<ReferenceQueue>();
}

Engine::~Engine() = default;

EventId Engine::schedule_at(SimTime t, Callback cb) {
  SMILESS_CHECK_MSG(t >= now_, "cannot schedule in the past: " << t << " < " << now_);
  SMILESS_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  ++stats_.scheduled;
  if (ref_ != nullptr) {
    ref_->schedule(t, id, std::move(cb));
  } else {
    calendar_.schedule(t, id, std::move(cb));
  }
  return id;
}

bool Engine::cancel(EventId id) {
  const bool cancelled = ref_ != nullptr ? ref_->cancel(id) : calendar_.cancel(id);
  if (cancelled) ++stats_.cancelled;
  return cancelled;
}

void Engine::run_until(SimTime end) {
  SMILESS_CHECK(end >= now_);
  SimTime t = 0.0;
  EventId id = 0;
  Callback cb;
  if (ref_ != nullptr) {
    while (ref_->pop_due(end, &t, &id, &cb)) {
      now_ = t;
      ++stats_.fired;
      cb();
      cb = nullptr;
    }
  } else {
    while (calendar_.pop_due(end, &t, &id, &cb)) {
      now_ = t;
      ++stats_.fired;
      cb();
      cb = nullptr;
    }
  }
  now_ = end;
}

void Engine::run() { run_until(std::numeric_limits<SimTime>::max()); }

std::size_t Engine::pending() const {
  return ref_ != nullptr ? ref_->live() : calendar_.live();
}

}  // namespace smiless::sim
