#include "sim/engine.hpp"

#include <limits>
#include <utility>

#include "prof/profiler.hpp"
#include "sim/reference_queue.hpp"

namespace smiless::sim {

Engine::Engine() = default;

Engine::Engine(QueueImpl impl) {
  if (impl == QueueImpl::BinaryHeap) ref_ = std::make_unique<ReferenceQueue>();
}

Engine::~Engine() = default;

EventId Engine::schedule_at(SimTime t, Callback cb) {
  prof::ScopeTimer scope(prof_, prof::Site::EngineSchedule);
  SMILESS_CHECK_MSG(t >= now_, "cannot schedule in the past: " << t << " < " << now_);
  SMILESS_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  ++stats_.scheduled;
  if (ref_ != nullptr) {
    ref_->schedule(t, id, std::move(cb));
  } else {
    calendar_.schedule(t, id, std::move(cb));
  }
  return id;
}

bool Engine::cancel(EventId id) {
  prof::ScopeTimer scope(prof_, prof::Site::EngineCancel);
  const bool cancelled = ref_ != nullptr ? ref_->cancel(id) : calendar_.cancel(id);
  if (cancelled) ++stats_.cancelled;
  return cancelled;
}

void Engine::sample_counters(SimTime t) {
  prof_->sample(t, prof::Counter::EngineLive, static_cast<double>(pending()));
  prof_->sample(t, prof::Counter::EngineScheduled, static_cast<double>(stats_.scheduled));
  prof_->sample(t, prof::Counter::EngineFired, static_cast<double>(stats_.fired));
  prof_->sample(t, prof::Counter::EngineCancelled, static_cast<double>(stats_.cancelled));
  if (const CalendarStats* cs = calendar_stats(); cs != nullptr) {
    prof_->sample(t, prof::Counter::CalendarBuckets, static_cast<double>(cs->buckets));
    prof_->sample(t, prof::Counter::CalendarResizes, static_cast<double>(cs->resizes));
    prof_->sample(t, prof::Counter::CalendarDirectSearches,
                  static_cast<double>(cs->direct_searches));
  }
}

void Engine::run_until(SimTime end) {
  prof::ScopeTimer scope(prof_, prof::Site::EngineRun);
  SMILESS_CHECK(end >= now_);
  const std::uint64_t fired_at_entry = stats_.fired;
  SimTime t = 0.0;
  EventId id = 0;
  Callback cb;
  if (ref_ != nullptr) {
    while (ref_->pop_due(end, &t, &id, &cb)) {
      now_ = t;
      ++stats_.fired;
      cb();
      cb = nullptr;
      if (prof_ != nullptr && (stats_.fired & (kSampleInterval - 1)) == 0)
        sample_counters(now_);
    }
  } else {
    while (calendar_.pop_due(end, &t, &id, &cb)) {
      now_ = t;
      ++stats_.fired;
      cb();
      cb = nullptr;
      if (prof_ != nullptr && (stats_.fired & (kSampleInterval - 1)) == 0)
        sample_counters(now_);
    }
  }
  // One closing sample per run_until that fired anything: short runs (and
  // each sharded window step) get at least one point per counter track.
  if (prof_ != nullptr && stats_.fired != fired_at_entry) sample_counters(t);
  now_ = end;
}

void Engine::run() { run_until(std::numeric_limits<SimTime>::max()); }

std::size_t Engine::pending() const {
  return ref_ != nullptr ? ref_->live() : calendar_.live();
}

SimTime Engine::next_time() {
  return ref_ != nullptr ? ref_->next_time() : calendar_.next_time();
}

}  // namespace smiless::sim
