#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "common/units.hpp"
#include "sim/calendar_queue.hpp"  // EventId

namespace smiless::sim {

/// The pre-calendar event queue, kept verbatim as the executable
/// specification of the Engine's ordering contract: a binary heap of
/// (time, id) keys shadowed by a `std::map<EventId, Callback>` whose
/// presence marks an event live. The differential fuzz harness
/// (tests/calendar_queue_test.cpp) drives this model and the CalendarQueue
/// side by side and demands identical firing orders, clocks and stats; the
/// throughput bench runs the same large cell on both to measure the
/// calendar's speedup. Engine selects it via Engine::QueueImpl::BinaryHeap.
class ReferenceQueue {
 public:
  using Callback = std::function<void()>;

  void schedule(SimTime t, EventId id, Callback cb) {
    queue_.push({t, id});
    callbacks_.emplace(id, std::move(cb));
  }

  bool cancel(EventId id) { return callbacks_.erase(id) != 0; }

  bool pop_due(SimTime end, SimTime* t, EventId* id, Callback* cb) {
    while (!queue_.empty()) {
      const QueuedEvent ev = queue_.top();
      auto it = callbacks_.find(ev.id);
      if (it == callbacks_.end()) {  // cancelled
        queue_.pop();
        continue;
      }
      if (ev.time > end) return false;
      queue_.pop();
      *cb = std::move(it->second);
      callbacks_.erase(it);
      *t = ev.time;
      *id = ev.id;
      return true;
    }
    return false;
  }

  /// Time of the earliest live event, or +infinity when empty. Discards
  /// tombstoned heap entries on the way down (trajectory-neutral — they
  /// would be skipped by the next pop_due anyway).
  SimTime next_time() {
    while (!queue_.empty() && callbacks_.find(queue_.top().id) == callbacks_.end())
      queue_.pop();
    return queue_.empty() ? std::numeric_limits<double>::infinity() : queue_.top().time;
  }

  std::size_t live() const { return callbacks_.size(); }

 private:
  struct QueuedEvent {
    SimTime time;
    EventId id;
    bool operator>(const QueuedEvent& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue_;
  // Deterministic by construction (detlint ptr-key/unordered-iter catalog):
  // keyed by the monotonic EventId, so any future iteration is in schedule
  // order, not hash order.
  std::map<EventId, Callback> callbacks_;
};

}  // namespace smiless::sim
