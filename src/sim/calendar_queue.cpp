#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace smiless::sim {

CalendarQueue::CalendarQueue() {
  buckets_.assign(kMinBuckets, Bucket{});
  stats_.buckets = kMinBuckets;
}

CalendarQueue::~CalendarQueue() {
  for (Bucket& b : buckets_) {
    Node* n = b.head;
    while (n != nullptr) {
      Node* next = n->next;
      slab_.destroy(n);
      n = next;
    }
  }
}

std::uint64_t CalendarQueue::vbucket(SimTime t) const {
  const double q = t * inv_width_;
  if (!(q < kMaxVb)) return static_cast<std::uint64_t>(kMaxVb);  // inf / huge
  if (q <= 0.0) return 0;
  return static_cast<std::uint64_t>(q);
}

void CalendarQueue::insert_node(Node* node) {
  Bucket& b = buckets_[static_cast<std::size_t>(node->vb) & (buckets_.size() - 1)];
  const auto before = [](const Node* a, const Node* c) {
    return a->time < c->time || (a->time == c->time && a->id < c->id);
  };
  // Fast path: events mostly arrive in nondecreasing (time, id) order per
  // bucket (monotonic ids; same-timestamp bursts like per-app window ticks
  // land here), so appending beats walking the list.
  if (b.tail != nullptr && before(b.tail, node)) {
    node->next = nullptr;
    b.tail->next = node;
    b.tail = node;
    b.hint = node;
    return;
  }
  // Earlier than the head: prepend in O(1) (reverse-order arrivals, or an
  // earlier-year node in an aliased bucket).
  if (b.head == nullptr || before(node, b.head)) {
    node->next = b.head;
    b.head = node;
    if (node->next == nullptr) b.tail = node;
    b.hint = node;
    return;
  }
  // Monotone-run fast path: if the node sorts right after the previous
  // insert, chain it there. This is what keeps a same-timestamp pile (m
  // ticks at one instant, in a bucket that also holds later events) O(m)
  // instead of O(m^2) — each tick lands after its predecessor.
  Node* h = b.hint;
  if (h != nullptr && before(h, node) &&
      (h->next == nullptr || before(node, h->next))) {
    node->next = h->next;
    h->next = node;
    if (node->next == nullptr) b.tail = node;
    b.hint = node;
    return;
  }
  Node** link = &b.head;
  while (*link != nullptr && before(*link, node)) link = &(*link)->next;
  node->next = *link;
  *link = node;
  if (node->next == nullptr) b.tail = node;
  b.hint = node;
}

void CalendarQueue::schedule(SimTime t, EventId id, Callback cb) {
  maybe_grow();
  Node* node = slab_.create();
  node->time = t;
  node->id = id;
  node->vb = vbucket(t);
  node->cancelled = false;
  node->cb = std::move(cb);
  insert_node(node);
  ids_.put(id, node);
  ++total_nodes_;
  ++live_;
  if (live_ > stats_.peak_live) stats_.peak_live = live_;
  // The cursor must never sit past a live event; a first event (or one
  // behind the cursor) repositions it.
  if (live_ == 1 || node->vb < cur_vb_) cur_vb_ = node->vb;
}

bool CalendarQueue::cancel(EventId id) {
  Node* node = ids_.take(id);
  if (node == nullptr) return false;
  node->cancelled = true;
  node->cb = nullptr;  // release the closure's captures immediately
  --live_;
  return true;
}

void CalendarQueue::unlink_free_cancelled_head(std::size_t idx) {
  Bucket& b = buckets_[idx];
  while (b.head != nullptr && b.head->cancelled) {
    Node* n = b.head;
    b.head = n->next;
    if (b.head == nullptr) b.tail = nullptr;
    if (b.hint == n) b.hint = nullptr;
    slab_.destroy(n);
    --total_nodes_;
  }
}

CalendarQueue::Node* CalendarQueue::find_earliest(std::size_t* idx) {
  if (live_ == 0) return nullptr;
  const std::size_t mask = buckets_.size() - 1;
  std::size_t scanned = 0;
  while (true) {
    const std::size_t i = static_cast<std::size_t>(cur_vb_) & mask;
    unlink_free_cancelled_head(i);
    Node* head = buckets_[i].head;
    if (head != nullptr && head->vb <= cur_vb_) {
      // This head is the globally earliest live event: equal times share a
      // virtual bucket, bucket lists are (time, id)-sorted, and the cursor
      // invariant rules out anything earlier elsewhere.
      *idx = i;
      return head;
    }
    ++cur_vb_;
    if (++scanned > buckets_.size()) {
      // A whole year of empty buckets: jump the cursor straight to the
      // earliest live event (sparse tail / far-future regime).
      ++stats_.direct_searches;
      direct_search();
      scanned = 0;
    }
  }
}

bool CalendarQueue::pop_due(SimTime end, SimTime* t, EventId* id, Callback* cb) {
  std::size_t idx = 0;
  Node* head = find_earliest(&idx);
  if (head == nullptr || head->time > end) return false;
  buckets_[idx].head = head->next;
  if (buckets_[idx].head == nullptr) buckets_[idx].tail = nullptr;
  if (buckets_[idx].hint == head) buckets_[idx].hint = nullptr;
  ids_.take(head->id);
  *t = head->time;
  *id = head->id;
  *cb = std::move(head->cb);
  slab_.destroy(head);
  --total_nodes_;
  --live_;
  maybe_shrink();
  return true;
}

SimTime CalendarQueue::next_time() {
  std::size_t idx = 0;
  Node* head = find_earliest(&idx);
  return head == nullptr ? std::numeric_limits<double>::infinity() : head->time;
}

void CalendarQueue::direct_search() {
  Node* best = nullptr;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    unlink_free_cancelled_head(i);
    Node* head = buckets_[i].head;  // bucket lists are sorted: head = bucket min
    if (head == nullptr) continue;
    if (best == nullptr || head->time < best->time ||
        (head->time == best->time && head->id < best->id))
      best = head;
  }
  SMILESS_CHECK_MSG(best != nullptr, "calendar queue: live events but empty buckets");
  cur_vb_ = best->vb;
}

void CalendarQueue::maybe_grow() {
  if (total_nodes_ + 1 > buckets_.size() * 2) resize(buckets_.size() * 2);
}

void CalendarQueue::maybe_shrink() {
  if (buckets_.size() > kMinBuckets && total_nodes_ < buckets_.size() / 4)
    resize(buckets_.size() / 2);
}

void CalendarQueue::resize(std::size_t new_buckets) {
  ++stats_.resizes;
  // Collect every pending node; tombstones are reclaimed here.
  std::vector<Node*> nodes;
  nodes.reserve(live_);
  for (Bucket& b : buckets_) {
    Node* n = b.head;
    while (n != nullptr) {
      Node* next = n->next;
      if (n->cancelled) {
        slab_.destroy(n);
        --total_nodes_;
      } else {
        nodes.push_back(n);
      }
      n = next;
    }
    b = Bucket{};
  }
  buckets_.assign(new_buckets, Bucket{});
  stats_.buckets = new_buckets;

  // Re-tune the width to the event density near the head of the queue: the
  // mean gap over the ~64 earliest pending timestamps. Head-local sampling
  // keeps one far-future outlier (a drain timer, an infinite keep-alive)
  // from stretching the width until every near-term event shares a bucket.
  if (nodes.size() >= 2) {
    std::vector<double> times;
    times.reserve(nodes.size());
    double tmax = 0.0;
    for (const Node* n : nodes)
      if (std::isfinite(n->time)) {
        times.push_back(n->time);
        tmax = std::max(tmax, std::abs(n->time));
      }
    if (times.size() >= 2) {
      const std::size_t k = std::min<std::size_t>(times.size() - 1, 64);
      std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k),
                       times.end());
      const double tk = times[static_cast<std::ptrdiff_t>(k)];
      const double tmin =
          *std::min_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k));
      double w = (tk - tmin) / static_cast<double>(k);
      // Span floor: one year (buckets x width) must cover the bulk of the
      // pending set, or distant virtual buckets alias into the same physical
      // bucket, later-year nodes park at bucket tails, and the sorted-insert
      // walk degenerates (a third of total CPU in the throughput bench's
      // submit storm). The 90th percentile keeps a few genuine far-future
      // outliers (drain timers) from stretching the width for everyone.
      const std::size_t p90 = (times.size() * 9) / 10;
      std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(p90),
                       times.end());
      const double t90 = times[static_cast<std::ptrdiff_t>(p90)];
      const double w_span = (t90 - tmin) / static_cast<double>(buckets_.size());
      if (w_span > w) w = w_span;
      // Keep vb = t/width inside the safely castable integer range; a zero
      // or degenerate sample (same-timestamp pile) keeps the current width.
      const double floor_w = std::max(tmax / (kMaxVb / 8.0), 1e-300);
      if (w > floor_w && std::isfinite(w)) {
        width_ = w;
        inv_width_ = 1.0 / w;
      } else if (width_ < floor_w) {
        width_ = floor_w;
        inv_width_ = 1.0 / floor_w;
      }
    }
  }

  // Re-bucket in descending (time, id) order so every per-bucket insert is
  // a head prepend: O(n log n) worst case, immune to the quadratic blowup
  // a same-timestamp pile would cause under per-node sorted insertion.
  std::sort(nodes.begin(), nodes.end(), [](const Node* a, const Node* b) {
    if (a->time != b->time) return a->time > b->time;
    return a->id > b->id;
  });
  const std::size_t mask = buckets_.size() - 1;
  std::uint64_t min_vb = static_cast<std::uint64_t>(kMaxVb);
  for (Node* n : nodes) {
    n->vb = vbucket(n->time);
    Bucket& b = buckets_[static_cast<std::size_t>(n->vb) & mask];
    n->next = b.head;
    b.head = n;
    if (b.tail == nullptr) b.tail = n;
    min_vb = std::min(min_vb, n->vb);
  }
  cur_vb_ = nodes.empty() ? 0 : min_vb;
}

// --- IdMap -----------------------------------------------------------------

void CalendarQueue::IdMap::put(EventId id, Node* node) {
  SMILESS_CHECK(id != 0);
  if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = home(id);
  while (slots_[i].key != 0) i = (i + 1) & mask;  // ids are unique by contract
  slots_[i] = {id, node};
  ++size_;
}

CalendarQueue::Node* CalendarQueue::IdMap::take(EventId id) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = home(id);
  while (slots_[i].key != id) {
    if (slots_[i].key == 0) return nullptr;
    i = (i + 1) & mask;
  }
  Node* out = slots_[i].node;
  // Backward-shift deletion: keep every probe chain contiguous without
  // tombstones. An element at j may fill the hole iff its home slot is
  // cyclically outside (hole, j].
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask;
  while (slots_[j].key != 0) {
    const std::size_t h = home(slots_[j].key);
    const bool movable = (j > hole) ? (h <= hole || h > j) : (h <= hole && h > j);
    if (movable) {
      slots_[hole] = slots_[j];
      hole = j;
    }
    j = (j + 1) & mask;
  }
  slots_[hole] = {0, nullptr};
  --size_;
  return out;
}

void CalendarQueue::IdMap::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  ++capacity_log2_;
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.key == 0) continue;
    std::size_t i = home(s.key);
    while (slots_[i].key != 0) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

}  // namespace smiless::sim
