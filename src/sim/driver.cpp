#include "sim/driver.hpp"

#include "sim/engine.hpp"

namespace smiless::sim {

void DesDriver::drive(Engine& engine, WorkSource* source, SimTime end) {
  if (source != nullptr) source->flush();
  engine.run_until(end);
}

}  // namespace smiless::sim
