#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace smiless {

/// Fixed-size worker pool with a shared FIFO queue.
///
/// Used by the Strategy Optimizer to optimise decomposed DAG chains in
/// parallel (§V-C2) and by the Auto-scaler to solve per-function batching
/// problems concurrently (§V-D), mirroring the paper's multi-process design.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, n) across the pool and wait for completion.
/// Exceptions from any iteration propagate (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

/// Map fn over [0, n) collecting results in index order.
template <typename F>
auto parallel_map(ThreadPool& pool, std::size_t n, F&& fn)
    -> std::vector<std::invoke_result_t<F, std::size_t>> {
  using R = std::invoke_result_t<F, std::size_t>;
  std::vector<std::future<R>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) futs.push_back(pool.submit([&fn, i] { return fn(i); }));
  std::vector<R> out;
  out.reserve(n);
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

}  // namespace smiless
