# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
