# Empty dependencies file for bench_fig15_autoscaling.
# This may be replaced when dependencies are built.
