# Empty compiler generated dependencies file for bench_fig10_sla_sweep.
# This may be replaced when dependencies are built.
