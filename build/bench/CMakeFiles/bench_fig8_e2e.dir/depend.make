# Empty dependencies file for bench_fig8_e2e.
# This may be replaced when dependencies are built.
