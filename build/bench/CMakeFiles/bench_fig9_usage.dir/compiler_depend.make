# Empty compiler generated dependencies file for bench_fig9_usage.
# This may be replaced when dependencies are built.
