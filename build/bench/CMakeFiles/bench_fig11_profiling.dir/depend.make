# Empty dependencies file for bench_fig11_profiling.
# This may be replaced when dependencies are built.
