file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_profiling.dir/bench_fig11_profiling.cpp.o"
  "CMakeFiles/bench_fig11_profiling.dir/bench_fig11_profiling.cpp.o.d"
  "bench_fig11_profiling"
  "bench_fig11_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
