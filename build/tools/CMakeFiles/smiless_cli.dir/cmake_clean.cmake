file(REMOVE_RECURSE
  "CMakeFiles/smiless_cli.dir/smiless_sim.cpp.o"
  "CMakeFiles/smiless_cli.dir/smiless_sim.cpp.o.d"
  "smiless"
  "smiless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
