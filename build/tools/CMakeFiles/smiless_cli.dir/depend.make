# Empty dependencies file for smiless_cli.
# This may be replaced when dependencies are built.
