# Empty dependencies file for serve_manifest.
# This may be replaced when dependencies are built.
