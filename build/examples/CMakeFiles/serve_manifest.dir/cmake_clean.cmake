file(REMOVE_RECURSE
  "CMakeFiles/serve_manifest.dir/serve_manifest.cpp.o"
  "CMakeFiles/serve_manifest.dir/serve_manifest.cpp.o.d"
  "serve_manifest"
  "serve_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
