
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/amber_alert.cpp" "examples/CMakeFiles/amber_alert.dir/amber_alert.cpp.o" "gcc" "examples/CMakeFiles/amber_alert.dir/amber_alert.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/smiless_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smiless_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/smiless_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/smiless_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/smiless_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smiless_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/smiless_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smiless_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smiless_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/smiless_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/smiless_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/smiless_math.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/smiless_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/smiless_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
