file(REMOVE_RECURSE
  "CMakeFiles/burst_scaling.dir/burst_scaling.cpp.o"
  "CMakeFiles/burst_scaling.dir/burst_scaling.cpp.o.d"
  "burst_scaling"
  "burst_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
