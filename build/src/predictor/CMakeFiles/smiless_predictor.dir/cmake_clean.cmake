file(REMOVE_RECURSE
  "CMakeFiles/smiless_predictor.dir/classic.cpp.o"
  "CMakeFiles/smiless_predictor.dir/classic.cpp.o.d"
  "CMakeFiles/smiless_predictor.dir/gbt.cpp.o"
  "CMakeFiles/smiless_predictor.dir/gbt.cpp.o.d"
  "CMakeFiles/smiless_predictor.dir/invocation_classifier.cpp.o"
  "CMakeFiles/smiless_predictor.dir/invocation_classifier.cpp.o.d"
  "CMakeFiles/smiless_predictor.dir/lstm.cpp.o"
  "CMakeFiles/smiless_predictor.dir/lstm.cpp.o.d"
  "CMakeFiles/smiless_predictor.dir/lstm_regressor.cpp.o"
  "CMakeFiles/smiless_predictor.dir/lstm_regressor.cpp.o.d"
  "libsmiless_predictor.a"
  "libsmiless_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
