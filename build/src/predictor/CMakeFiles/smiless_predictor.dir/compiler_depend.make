# Empty compiler generated dependencies file for smiless_predictor.
# This may be replaced when dependencies are built.
