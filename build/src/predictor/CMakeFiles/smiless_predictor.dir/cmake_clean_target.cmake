file(REMOVE_RECURSE
  "libsmiless_predictor.a"
)
