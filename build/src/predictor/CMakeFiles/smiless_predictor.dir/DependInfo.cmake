
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/classic.cpp" "src/predictor/CMakeFiles/smiless_predictor.dir/classic.cpp.o" "gcc" "src/predictor/CMakeFiles/smiless_predictor.dir/classic.cpp.o.d"
  "/root/repo/src/predictor/gbt.cpp" "src/predictor/CMakeFiles/smiless_predictor.dir/gbt.cpp.o" "gcc" "src/predictor/CMakeFiles/smiless_predictor.dir/gbt.cpp.o.d"
  "/root/repo/src/predictor/invocation_classifier.cpp" "src/predictor/CMakeFiles/smiless_predictor.dir/invocation_classifier.cpp.o" "gcc" "src/predictor/CMakeFiles/smiless_predictor.dir/invocation_classifier.cpp.o.d"
  "/root/repo/src/predictor/lstm.cpp" "src/predictor/CMakeFiles/smiless_predictor.dir/lstm.cpp.o" "gcc" "src/predictor/CMakeFiles/smiless_predictor.dir/lstm.cpp.o.d"
  "/root/repo/src/predictor/lstm_regressor.cpp" "src/predictor/CMakeFiles/smiless_predictor.dir/lstm_regressor.cpp.o" "gcc" "src/predictor/CMakeFiles/smiless_predictor.dir/lstm_regressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/smiless_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
