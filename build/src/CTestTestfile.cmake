# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("math")
subdirs("concurrency")
subdirs("dag")
subdirs("perfmodel")
subdirs("sim")
subdirs("cluster")
subdirs("faults")
subdirs("serverless")
subdirs("workload")
subdirs("profiler")
subdirs("predictor")
subdirs("apps")
subdirs("core")
subdirs("baselines")
