# Empty compiler generated dependencies file for smiless_perfmodel.
# This may be replaced when dependencies are built.
