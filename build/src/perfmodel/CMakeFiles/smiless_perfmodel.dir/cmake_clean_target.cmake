file(REMOVE_RECURSE
  "libsmiless_perfmodel.a"
)
