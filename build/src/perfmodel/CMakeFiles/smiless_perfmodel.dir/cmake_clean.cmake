file(REMOVE_RECURSE
  "CMakeFiles/smiless_perfmodel.dir/hardware.cpp.o"
  "CMakeFiles/smiless_perfmodel.dir/hardware.cpp.o.d"
  "libsmiless_perfmodel.a"
  "libsmiless_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
