file(REMOVE_RECURSE
  "libsmiless_sim.a"
)
