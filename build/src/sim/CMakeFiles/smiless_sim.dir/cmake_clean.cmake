file(REMOVE_RECURSE
  "CMakeFiles/smiless_sim.dir/engine.cpp.o"
  "CMakeFiles/smiless_sim.dir/engine.cpp.o.d"
  "libsmiless_sim.a"
  "libsmiless_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
