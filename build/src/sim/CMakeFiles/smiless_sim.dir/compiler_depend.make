# Empty compiler generated dependencies file for smiless_sim.
# This may be replaced when dependencies are built.
