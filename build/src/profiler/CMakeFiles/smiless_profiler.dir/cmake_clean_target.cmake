file(REMOVE_RECURSE
  "libsmiless_profiler.a"
)
