file(REMOVE_RECURSE
  "CMakeFiles/smiless_profiler.dir/offline_profiler.cpp.o"
  "CMakeFiles/smiless_profiler.dir/offline_profiler.cpp.o.d"
  "libsmiless_profiler.a"
  "libsmiless_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
