# Empty compiler generated dependencies file for smiless_profiler.
# This may be replaced when dependencies are built.
