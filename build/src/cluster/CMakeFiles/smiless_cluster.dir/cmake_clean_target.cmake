file(REMOVE_RECURSE
  "libsmiless_cluster.a"
)
