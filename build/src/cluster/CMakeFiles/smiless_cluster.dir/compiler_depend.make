# Empty compiler generated dependencies file for smiless_cluster.
# This may be replaced when dependencies are built.
