file(REMOVE_RECURSE
  "CMakeFiles/smiless_cluster.dir/cluster.cpp.o"
  "CMakeFiles/smiless_cluster.dir/cluster.cpp.o.d"
  "libsmiless_cluster.a"
  "libsmiless_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
