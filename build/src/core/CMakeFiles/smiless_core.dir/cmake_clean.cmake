file(REMOVE_RECURSE
  "CMakeFiles/smiless_core.dir/autoscaler.cpp.o"
  "CMakeFiles/smiless_core.dir/autoscaler.cpp.o.d"
  "CMakeFiles/smiless_core.dir/prewarm.cpp.o"
  "CMakeFiles/smiless_core.dir/prewarm.cpp.o.d"
  "CMakeFiles/smiless_core.dir/smiless_policy.cpp.o"
  "CMakeFiles/smiless_core.dir/smiless_policy.cpp.o.d"
  "CMakeFiles/smiless_core.dir/strategy_optimizer.cpp.o"
  "CMakeFiles/smiless_core.dir/strategy_optimizer.cpp.o.d"
  "CMakeFiles/smiless_core.dir/workflow_manager.cpp.o"
  "CMakeFiles/smiless_core.dir/workflow_manager.cpp.o.d"
  "libsmiless_core.a"
  "libsmiless_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
