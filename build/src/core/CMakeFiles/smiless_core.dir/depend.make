# Empty dependencies file for smiless_core.
# This may be replaced when dependencies are built.
