file(REMOVE_RECURSE
  "libsmiless_core.a"
)
