file(REMOVE_RECURSE
  "CMakeFiles/smiless_faults.dir/fault_injector.cpp.o"
  "CMakeFiles/smiless_faults.dir/fault_injector.cpp.o.d"
  "libsmiless_faults.a"
  "libsmiless_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
