# Empty dependencies file for smiless_faults.
# This may be replaced when dependencies are built.
