file(REMOVE_RECURSE
  "libsmiless_faults.a"
)
