file(REMOVE_RECURSE
  "libsmiless_apps.a"
)
