file(REMOVE_RECURSE
  "CMakeFiles/smiless_apps.dir/catalog.cpp.o"
  "CMakeFiles/smiless_apps.dir/catalog.cpp.o.d"
  "CMakeFiles/smiless_apps.dir/serialize.cpp.o"
  "CMakeFiles/smiless_apps.dir/serialize.cpp.o.d"
  "libsmiless_apps.a"
  "libsmiless_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
