# Empty compiler generated dependencies file for smiless_apps.
# This may be replaced when dependencies are built.
