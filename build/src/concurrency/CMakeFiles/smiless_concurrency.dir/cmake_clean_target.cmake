file(REMOVE_RECURSE
  "libsmiless_concurrency.a"
)
