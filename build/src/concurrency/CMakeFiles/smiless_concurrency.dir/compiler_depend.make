# Empty compiler generated dependencies file for smiless_concurrency.
# This may be replaced when dependencies are built.
