file(REMOVE_RECURSE
  "CMakeFiles/smiless_concurrency.dir/thread_pool.cpp.o"
  "CMakeFiles/smiless_concurrency.dir/thread_pool.cpp.o.d"
  "libsmiless_concurrency.a"
  "libsmiless_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
