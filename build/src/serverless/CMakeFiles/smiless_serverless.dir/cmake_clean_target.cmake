file(REMOVE_RECURSE
  "libsmiless_serverless.a"
)
