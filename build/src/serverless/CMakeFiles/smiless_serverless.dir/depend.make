# Empty dependencies file for smiless_serverless.
# This may be replaced when dependencies are built.
