
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serverless/platform.cpp" "src/serverless/CMakeFiles/smiless_serverless.dir/platform.cpp.o" "gcc" "src/serverless/CMakeFiles/smiless_serverless.dir/platform.cpp.o.d"
  "/root/repo/src/serverless/tracing.cpp" "src/serverless/CMakeFiles/smiless_serverless.dir/tracing.cpp.o" "gcc" "src/serverless/CMakeFiles/smiless_serverless.dir/tracing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smiless_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smiless_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/smiless_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/smiless_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/smiless_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/smiless_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
