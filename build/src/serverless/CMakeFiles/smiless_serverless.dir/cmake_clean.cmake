file(REMOVE_RECURSE
  "CMakeFiles/smiless_serverless.dir/platform.cpp.o"
  "CMakeFiles/smiless_serverless.dir/platform.cpp.o.d"
  "CMakeFiles/smiless_serverless.dir/tracing.cpp.o"
  "CMakeFiles/smiless_serverless.dir/tracing.cpp.o.d"
  "libsmiless_serverless.a"
  "libsmiless_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
