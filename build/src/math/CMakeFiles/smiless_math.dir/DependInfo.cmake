
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bisection.cpp" "src/math/CMakeFiles/smiless_math.dir/bisection.cpp.o" "gcc" "src/math/CMakeFiles/smiless_math.dir/bisection.cpp.o.d"
  "/root/repo/src/math/fft.cpp" "src/math/CMakeFiles/smiless_math.dir/fft.cpp.o" "gcc" "src/math/CMakeFiles/smiless_math.dir/fft.cpp.o.d"
  "/root/repo/src/math/gaussian_process.cpp" "src/math/CMakeFiles/smiless_math.dir/gaussian_process.cpp.o" "gcc" "src/math/CMakeFiles/smiless_math.dir/gaussian_process.cpp.o.d"
  "/root/repo/src/math/levenberg_marquardt.cpp" "src/math/CMakeFiles/smiless_math.dir/levenberg_marquardt.cpp.o" "gcc" "src/math/CMakeFiles/smiless_math.dir/levenberg_marquardt.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/smiless_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/smiless_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/smiless_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/smiless_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
