file(REMOVE_RECURSE
  "libsmiless_math.a"
)
