file(REMOVE_RECURSE
  "CMakeFiles/smiless_math.dir/bisection.cpp.o"
  "CMakeFiles/smiless_math.dir/bisection.cpp.o.d"
  "CMakeFiles/smiless_math.dir/fft.cpp.o"
  "CMakeFiles/smiless_math.dir/fft.cpp.o.d"
  "CMakeFiles/smiless_math.dir/gaussian_process.cpp.o"
  "CMakeFiles/smiless_math.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/smiless_math.dir/levenberg_marquardt.cpp.o"
  "CMakeFiles/smiless_math.dir/levenberg_marquardt.cpp.o.d"
  "CMakeFiles/smiless_math.dir/matrix.cpp.o"
  "CMakeFiles/smiless_math.dir/matrix.cpp.o.d"
  "CMakeFiles/smiless_math.dir/stats.cpp.o"
  "CMakeFiles/smiless_math.dir/stats.cpp.o.d"
  "libsmiless_math.a"
  "libsmiless_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
