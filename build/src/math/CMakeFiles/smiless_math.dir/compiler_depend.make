# Empty compiler generated dependencies file for smiless_math.
# This may be replaced when dependencies are built.
