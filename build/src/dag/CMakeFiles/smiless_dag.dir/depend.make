# Empty dependencies file for smiless_dag.
# This may be replaced when dependencies are built.
