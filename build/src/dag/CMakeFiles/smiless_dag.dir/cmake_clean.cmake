file(REMOVE_RECURSE
  "CMakeFiles/smiless_dag.dir/dag.cpp.o"
  "CMakeFiles/smiless_dag.dir/dag.cpp.o.d"
  "CMakeFiles/smiless_dag.dir/serialize.cpp.o"
  "CMakeFiles/smiless_dag.dir/serialize.cpp.o.d"
  "libsmiless_dag.a"
  "libsmiless_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
