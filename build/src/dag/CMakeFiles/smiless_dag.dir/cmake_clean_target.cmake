file(REMOVE_RECURSE
  "libsmiless_dag.a"
)
