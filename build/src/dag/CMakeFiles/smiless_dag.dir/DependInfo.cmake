
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/dag.cpp" "src/dag/CMakeFiles/smiless_dag.dir/dag.cpp.o" "gcc" "src/dag/CMakeFiles/smiless_dag.dir/dag.cpp.o.d"
  "/root/repo/src/dag/serialize.cpp" "src/dag/CMakeFiles/smiless_dag.dir/serialize.cpp.o" "gcc" "src/dag/CMakeFiles/smiless_dag.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
