# Empty dependencies file for smiless_workload.
# This may be replaced when dependencies are built.
