file(REMOVE_RECURSE
  "CMakeFiles/smiless_workload.dir/trace.cpp.o"
  "CMakeFiles/smiless_workload.dir/trace.cpp.o.d"
  "CMakeFiles/smiless_workload.dir/trace_io.cpp.o"
  "CMakeFiles/smiless_workload.dir/trace_io.cpp.o.d"
  "libsmiless_workload.a"
  "libsmiless_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
