file(REMOVE_RECURSE
  "libsmiless_workload.a"
)
