file(REMOVE_RECURSE
  "CMakeFiles/smiless_baselines.dir/aquatope.cpp.o"
  "CMakeFiles/smiless_baselines.dir/aquatope.cpp.o.d"
  "CMakeFiles/smiless_baselines.dir/experiment.cpp.o"
  "CMakeFiles/smiless_baselines.dir/experiment.cpp.o.d"
  "CMakeFiles/smiless_baselines.dir/grandslam.cpp.o"
  "CMakeFiles/smiless_baselines.dir/grandslam.cpp.o.d"
  "CMakeFiles/smiless_baselines.dir/icebreaker.cpp.o"
  "CMakeFiles/smiless_baselines.dir/icebreaker.cpp.o.d"
  "CMakeFiles/smiless_baselines.dir/orion.cpp.o"
  "CMakeFiles/smiless_baselines.dir/orion.cpp.o.d"
  "libsmiless_baselines.a"
  "libsmiless_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiless_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
