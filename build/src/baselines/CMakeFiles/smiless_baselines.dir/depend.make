# Empty dependencies file for smiless_baselines.
# This may be replaced when dependencies are built.
