file(REMOVE_RECURSE
  "libsmiless_baselines.a"
)
