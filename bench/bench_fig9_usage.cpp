// Reproduces Fig. 9: (a) the ratio of CPU to GPU usage per policy and
// (b) the fraction of container re-initialisations. Paper shape: IceBreaker
// parks most functions warm on GPU (lowest CPU:GPU ratio); Aquatope
// re-initialises the most (eager termination); GrandSLAm almost never
// re-initialises; SMIless sits in between on both axes.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

namespace {

struct Usage {
  double cpu = 0.0, gpu = 0.0;
  long inits = 0, invocations = 0;
};

void add_usage_row(TextTable& table, const std::string& name, const Usage& u) {
  const std::string ratio =
      u.gpu > 0.0 ? TextTable::num(u.cpu / u.gpu, 2) : std::string("inf (no GPU)");
  table.add_row({name, TextTable::num(u.cpu, 0), TextTable::num(u.gpu, 0), ratio,
                 std::to_string(u.inits), std::to_string(u.invocations),
                 pct(static_cast<double>(u.inits) / static_cast<double>(u.invocations))});
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration();

  // One grid, two SLA points: the headline zoo at the paper's 2 s target,
  // plus SMIless at a tight 0.5 s target (where it reaches for GPU slices).
  exp::ExperimentGrid grid;
  grid.base = base_config(2.0, duration);
  grid.policies = headline_policies();
  grid.apps = workload_names();
  auto cells = shared_runner().run(grid);

  exp::ExperimentGrid tight = grid;
  tight.base.sla = 0.5;
  tight.policies = {"smiless"};
  const auto tight_cells = shared_runner().run(tight);

  TextTable table({"Policy", "CPU core-s", "GPU pct-s", "CPU:GPU ratio",
                   "inits", "invocations", "reinit fraction"});
  for (const auto& policy : grid.policies) {
    Usage u;
    for (const auto& app : grid.apps) {
      const auto& r = cell_for(cells, policy, app).result;
      u.cpu += r.cpu_core_seconds;
      u.gpu += r.gpu_pct_seconds;
      u.inits += r.initializations;
      u.invocations += r.invocations;
    }
    add_usage_row(table, policy_display(policy), u);
  }
  // SMIless reaches for GPU slices once the SLA outpaces the CPU tiers;
  // at the default 2 s target the CPU backend suffices in this calibration.
  {
    Usage u;
    for (const auto& cell : tight_cells) {
      u.cpu += cell.result.cpu_core_seconds;
      u.gpu += cell.result.gpu_pct_seconds;
      u.inits += cell.result.initializations;
      u.invocations += cell.result.invocations;
    }
    add_usage_row(table, "SMIless (SLA 0.5s)", u);
  }

  std::cout << "=== Fig. 9: hardware usage and cold-start management (trace " << duration
            << " s/app) ===\n";
  table.print();
  std::cout << "\nShape check: IceBreaker lowest CPU:GPU ratio (GPU-parked);\n"
               "Aquatope highest reinit fraction; GrandSLAm lowest.\n";
  return 0;
}
