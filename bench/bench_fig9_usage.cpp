// Reproduces Fig. 9: (a) the ratio of CPU to GPU usage per policy and
// (b) the fraction of container re-initialisations. Paper shape: IceBreaker
// parks most functions warm on GPU (lowest CPU:GPU ratio); Aquatope
// re-initialises the most (eager termination); GrandSLAm almost never
// re-initialises; SMIless sits in between on both axes.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

int main() {
  const double duration = bench_duration();
  const auto workloads = apps::make_all_workloads(2.0);
  const std::vector<baselines::PolicyKind> kinds = {
      baselines::PolicyKind::Smiless,   baselines::PolicyKind::GrandSlam,
      baselines::PolicyKind::IceBreaker, baselines::PolicyKind::Orion,
      baselines::PolicyKind::Aquatope,
  };

  TextTable table({"Policy", "CPU core-s", "GPU pct-s", "CPU:GPU ratio",
                   "inits", "invocations", "reinit fraction"});
  for (const auto kind : kinds) {
    double cpu = 0.0, gpu = 0.0;
    long inits = 0, invocations = 0;
    for (const auto& app : workloads) {
      const auto trace = trace_for(app, duration);
      const auto r = run_cell(kind, app, trace);
      cpu += r.cpu_core_seconds;
      gpu += r.gpu_pct_seconds;
      inits += r.initializations;
      invocations += r.invocations;
    }
    const std::string ratio =
        gpu > 0.0 ? TextTable::num(cpu / gpu, 2) : std::string("inf (no GPU)");
    table.add_row({baselines::policy_kind_name(kind), TextTable::num(cpu, 0),
                   TextTable::num(gpu, 0), ratio, std::to_string(inits),
                   std::to_string(invocations),
                   pct(static_cast<double>(inits) / static_cast<double>(invocations))});
  }
  // SMIless reaches for GPU slices once the SLA outpaces the CPU tiers;
  // at the default 2 s target the CPU backend suffices in this calibration.
  {
    double cpu = 0.0, gpu = 0.0;
    long inits = 0, invocations = 0;
    for (const auto& app : apps::make_all_workloads(0.5)) {
      const auto trace = trace_for(app, duration);
      const auto r = run_cell(baselines::PolicyKind::Smiless, app, trace);
      cpu += r.cpu_core_seconds;
      gpu += r.gpu_pct_seconds;
      inits += r.initializations;
      invocations += r.invocations;
    }
    table.add_row({"SMIless (SLA 0.5s)", TextTable::num(cpu, 0), TextTable::num(gpu, 0),
                   gpu > 0.0 ? TextTable::num(cpu / gpu, 2) : "inf", std::to_string(inits),
                   std::to_string(invocations),
                   pct(static_cast<double>(inits) / static_cast<double>(invocations))});
  }

  std::cout << "=== Fig. 9: hardware usage and cold-start management (trace " << duration
            << " s/app) ===\n";
  table.print();
  std::cout << "\nShape check: IceBreaker lowest CPU:GPU ratio (GPU-parked);\n"
               "Aquatope highest reinit fraction; GrandSLAm lowest.\n";
  return 0;
}
