#pragma once

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "common/table.hpp"
#include "exp/aggregate.hpp"
#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace smiless::bench {

/// The shared bench-harness knobs, set once by parse_bench_args() before
/// anything reads them. First-class flags (no environment variables): they
/// change how long the benches run and how many workers execute, never any
/// cell's result — artifacts are bit-identical for every value.
struct BenchArgs {
  double duration = 0.0;     ///< trace length override (0 = bench's default)
  std::size_t threads = 0;   ///< sweep workers (0 = hardware concurrency)
  int lane_threads = 0;      ///< lane-stepping threads for sharded cells
  bool progress = false;     ///< per-cell completion lines on stderr
  std::string report_out;    ///< self-contained HTML report destination
};

inline BenchArgs& bench_args() {
  // detlint:allow(global-state) process-wide CLI knobs, written once in main before any benchmark runs
  static BenchArgs args;
  return args;
}

/// Consume argv[i] if it is one of the shared bench flags (--duration S,
/// --threads N, --lane-threads N, --progress), advancing i past its value.
/// Benches with extra private flags call this first in their own loop.
inline bool consume_shared_flag(int argc, char** argv, int& i) {
  const auto value = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": " << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  if (!std::strcmp(argv[i], "--duration")) {
    bench_args().duration = std::atof(value("--duration"));
    if (bench_args().duration <= 0.0) {
      std::cerr << argv[0] << ": --duration must be > 0\n";
      std::exit(2);
    }
    return true;
  }
  if (!std::strcmp(argv[i], "--threads")) {
    const long v = std::atol(value("--threads"));
    if (v < 1) {
      std::cerr << argv[0] << ": --threads must be >= 1\n";
      std::exit(2);
    }
    bench_args().threads = static_cast<std::size_t>(v);
    return true;
  }
  if (!std::strcmp(argv[i], "--lane-threads")) {
    const int v = std::atoi(value("--lane-threads"));
    if (v < 0) {
      std::cerr << argv[0] << ": --lane-threads must be >= 0\n";
      std::exit(2);
    }
    bench_args().lane_threads = v;
    return true;
  }
  if (!std::strcmp(argv[i], "--progress")) {
    bench_args().progress = true;
    return true;
  }
  if (!std::strcmp(argv[i], "--report-out")) {
    bench_args().report_out = value("--report-out");
    return true;
  }
  return false;
}

/// Parse the shared bench flags; call first thing in main(). Rejects
/// anything consume_shared_flag doesn't know, so typos fail loudly.
inline void parse_bench_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (consume_shared_flag(argc, argv, i)) continue;
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::cerr << "usage: " << argv[0]
                << " [--duration S] [--threads N] [--lane-threads N] [--progress]\n"
                   "  [--report-out file.html]\n"
                   "  --duration S      simulated trace length per app (e.g. 7200\n"
                   "                    for the paper's 2-hour runs)\n"
                   "  --threads N       concurrent sweep cells (default: hardware;\n"
                   "                    results are bit-identical for every value)\n"
                   "  --lane-threads N  threads stepping sharded cells' lanes\n"
                   "                    (0 = hardware, 1 = serial; wall-clock only)\n"
                   "  --progress        per-cell completion lines on stderr\n"
                   "  --report-out F    write a self-contained HTML report of the\n"
                   "                    bench's cells (charts + profiler breakdown)\n";
      std::exit(0);
    }
    std::cerr << argv[0] << ": unknown flag " << argv[i] << " (see --help)\n";
    std::exit(2);
  }
}

/// Trace length (seconds of simulated time) per application. The paper runs
/// 2 hours; each bench's fallback keeps the binary in the tens of seconds.
/// Override with --duration 7200 for full-length runs.
inline double bench_duration(double fallback = 600.0) {
  return bench_args().duration > 0.0 ? bench_args().duration : fallback;
}

/// The one sweep runner every bench binary drives its grid through. Cells
/// run concurrently (--threads overrides the worker count, 1 forces serial;
/// results are bit-identical either way), --lane-threads steps sharded
/// cells' lanes, and --progress prints per-cell completion lines to stderr.
/// When --report-out is set, every executed cell is also accumulated and
/// the HTML report is (re)written after each sweep, so the final file
/// covers everything the bench ran. Built on first use from bench_args(),
/// so parse_bench_args() must run before the first cell does.
class ReportingRunner {
 public:
  explicit ReportingRunner(exp::RunnerOptions options) : inner_(options) {}

  std::vector<exp::CellResult> run(const std::vector<exp::ExperimentConfig>& cells) {
    std::vector<exp::CellResult> out = inner_.run(cells);
    if (!bench_args().report_out.empty()) {
      collected_.insert(collected_.end(), out.begin(), out.end());
      exp::write_report(collected_, bench_args().report_out);
    }
    return out;
  }
  std::vector<exp::CellResult> run(const exp::ExperimentGrid& grid) {
    return run(grid.expand());
  }

  const baselines::ProfileStore& profiles(std::uint64_t seed) { return inner_.profiles(seed); }
  std::shared_ptr<ThreadPool> policy_pool() const { return inner_.policy_pool(); }

 private:
  exp::Runner inner_;
  std::vector<exp::CellResult> collected_;
};

inline ReportingRunner& shared_runner() {
  // detlint:allow(global-state) one runner shared across benchmark registrations; benchmarks run serially
  static ReportingRunner runner = [] {
    exp::RunnerOptions options;
    options.threads = bench_args().threads;
    options.lane_threads = bench_args().lane_threads;
    options.progress = bench_args().progress;
    return ReportingRunner(options);
  }();
  return runner;
}

/// Base cell config of the evaluation section: preset Azure-like traces,
/// statistical predictors opt-in per bench.
inline exp::ExperimentConfig base_config(double sla = 2.0, double duration = 600.0) {
  exp::ExperimentConfig c;
  c.sla = sla;
  c.trace.duration = duration;
  // --report-out flows through the cell config: it turns on the time series
  // and the self-profiler for every cell, and write_artifacts emits the HTML.
  c.obs.report_out = bench_args().report_out;
  return c;
}

/// Config-file spellings of the headline policy zoo (Fig. 8-10 order).
inline std::vector<std::string> headline_policies(bool with_opt = false) {
  std::vector<std::string> out = {"smiless", "grandslam", "icebreaker", "orion", "aquatope"};
  if (with_opt) out.push_back("opt");
  return out;
}

inline std::vector<std::string> workload_names() { return {"wl1", "wl2", "wl3"}; }

/// Display name ("SMIless") for a config spelling ("smiless").
inline std::string policy_display(const std::string& config_name) {
  const auto kind = baselines::parse_policy_kind(config_name);
  return kind ? baselines::policy_kind_name(*kind) : config_name;
}

/// The cell for (policy, app) — benches print fixed policy x app matrices
/// out of one flat sweep result. Aborts if the sweep didn't contain it.
inline const exp::CellResult& cell_for(const std::vector<exp::CellResult>& cells,
                                       const std::string& policy, const std::string& app) {
  for (const auto& c : cells)
    if (c.config.policy == policy && c.config.app == app) return c;
  std::cerr << "bench: no cell for policy=" << policy << " app=" << app << "\n";
  std::abort();
}

inline std::string pct(double v) { return TextTable::num(100.0 * v, 1) + "%"; }

}  // namespace smiless::bench
