#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "baselines/experiment.hpp"
#include "common/table.hpp"
#include "concurrency/thread_pool.hpp"
#include "workload/trace.hpp"

namespace smiless::bench {

/// Trace length (seconds of simulated time) per application. The paper runs
/// 2 hours; the default here keeps every bench binary in the tens of
/// seconds. Override with SMILESS_BENCH_DURATION=7200 for full-length runs.
inline double bench_duration(double fallback = 600.0) {
  if (const char* env = std::getenv("SMILESS_BENCH_DURATION")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

/// Shared fitted-profile store (profiling the Table-I catalog once).
inline const baselines::ProfileStore& shared_profiles() {
  static Rng rng(2024);
  static baselines::ProfileStore store{profiler::OfflineProfiler{}, rng};
  return store;
}

inline std::shared_ptr<ThreadPool> shared_pool() {
  static auto pool = std::make_shared<ThreadPool>();
  return pool;
}

/// Azure-like trace for one workload, deterministic per (app, seed).
inline workload::Trace trace_for(const apps::App& app, double duration,
                                 std::uint64_t seed = 42) {
  Rng rng(seed ^ std::hash<std::string>{}(app.name));
  auto options = workload::preset_for_workload(app.name, duration);
  return workload::generate_trace(options, rng);
}

/// Run one (policy, app, trace) cell.
inline baselines::RunResult run_cell(baselines::PolicyKind kind, const apps::App& app,
                                     const workload::Trace& trace, bool use_lstm = true) {
  baselines::PolicySettings settings;
  settings.use_lstm = use_lstm;
  settings.pool = shared_pool();
  settings.oracle_trace = &trace;  // only OPT reads it
  baselines::ExperimentOptions options;
  return baselines::run_experiment(
      app, trace, baselines::make_policy(kind, app, shared_profiles(), settings), options);
}

inline std::string pct(double v) { return TextTable::num(100.0 * v, 1) + "%"; }

}  // namespace smiless::bench
