#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "common/table.hpp"
#include "exp/aggregate.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"

namespace smiless::bench {

/// Trace length (seconds of simulated time) per application. The paper runs
/// 2 hours; the default here keeps every bench binary in the tens of
/// seconds. Override with SMILESS_BENCH_DURATION=7200 for full-length runs.
inline double bench_duration(double fallback = 600.0) {
  // detlint:allow(env-read) bench-harness knob; changes which cells run, never a cell's result
  if (const char* env = std::getenv("SMILESS_BENCH_DURATION")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

/// The one sweep runner every bench binary drives its grid through. Cells
/// run concurrently (SMILESS_BENCH_THREADS overrides the worker count, 1
/// forces serial; results are bit-identical either way), and
/// SMILESS_BENCH_PROGRESS=1 prints per-cell completion lines to stderr.
inline exp::Runner& shared_runner() {
  static exp::Runner runner = [] {
    exp::RunnerOptions options;
    // detlint:allow(env-read) worker-count knob; results are bit-identical at any thread count
    if (const char* env = std::getenv("SMILESS_BENCH_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) options.threads = static_cast<std::size_t>(v);
    }
    // detlint:allow(env-read) progress printing toggle; stderr only
    options.progress = std::getenv("SMILESS_BENCH_PROGRESS") != nullptr;
    return exp::Runner(options);
  }();
  return runner;
}

/// Base cell config of the evaluation section: preset Azure-like traces,
/// statistical predictors opt-in per bench.
inline exp::ExperimentConfig base_config(double sla = 2.0, double duration = 600.0) {
  exp::ExperimentConfig c;
  c.sla = sla;
  c.trace.duration = duration;
  return c;
}

/// Config-file spellings of the headline policy zoo (Fig. 8-10 order).
inline std::vector<std::string> headline_policies(bool with_opt = false) {
  std::vector<std::string> out = {"smiless", "grandslam", "icebreaker", "orion", "aquatope"};
  if (with_opt) out.push_back("opt");
  return out;
}

inline std::vector<std::string> workload_names() { return {"wl1", "wl2", "wl3"}; }

/// Display name ("SMIless") for a config spelling ("smiless").
inline std::string policy_display(const std::string& config_name) {
  const auto kind = baselines::parse_policy_kind(config_name);
  return kind ? baselines::policy_kind_name(*kind) : config_name;
}

/// The cell for (policy, app) — benches print fixed policy x app matrices
/// out of one flat sweep result. Aborts if the sweep didn't contain it.
inline const exp::CellResult& cell_for(const std::vector<exp::CellResult>& cells,
                                       const std::string& policy, const std::string& app) {
  for (const auto& c : cells)
    if (c.config.policy == policy && c.config.app == app) return c;
  std::cerr << "bench: no cell for policy=" << policy << " app=" << app << "\n";
  std::abort();
}

inline std::string pct(double v) { return TextTable::num(100.0 * v, 1) + "%"; }

}  // namespace smiless::bench
