// Reproduces Fig. 10: total execution cost (a) and SLA violation ratio (b)
// as the SLA target sweeps 1..6 seconds. Paper shape: SMIless cheapest and
// ~violation-free at every setting with costs that barely move across the
// sweep; Orion benefits most from lenient SLAs (gap to SMIless shrinks to
// ~2x beyond 5 s); Aquatope stays cheap but violating.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration(400.0);

  exp::ExperimentGrid grid;
  grid.base = base_config(2.0, duration);
  grid.policies = headline_policies();
  grid.apps = workload_names();
  grid.slas = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

  std::cout << "=== Fig. 10: " << grid.cell_count() << "-cell sweep (trace " << duration
            << " s/app) ===\n";
  const auto cells = shared_runner().run(grid);

  TextTable cost({"SLA (s)", "SMIless", "GrandSLAm", "IceBreaker", "Orion", "Aquatope"});
  TextTable viol({"SLA (s)", "SMIless", "GrandSLAm", "IceBreaker", "Orion", "Aquatope"});
  for (const double sla : grid.slas) {
    std::vector<std::string> cost_row{TextTable::num(sla, 0)};
    std::vector<std::string> viol_row{TextTable::num(sla, 0)};
    for (const auto& policy : grid.policies) {
      double total_cost = 0.0;
      long violated = 0, submitted = 0;
      for (const auto& cell : cells) {
        if (cell.config.policy != policy || cell.config.sla != sla) continue;
        total_cost += cell.result.cost;
        violated +=
            static_cast<long>(cell.result.violation_ratio * cell.result.submitted + 0.5);
        submitted += cell.result.submitted;
      }
      cost_row.push_back(TextTable::num(total_cost, 4));
      viol_row.push_back(pct(static_cast<double>(violated) / submitted));
    }
    cost.add_row(cost_row);
    viol.add_row(viol_row);
  }

  std::cout << "\n=== Fig. 10a: total execution cost ($) vs SLA ===\n";
  cost.print();
  std::cout << "\n=== Fig. 10b: SLA violation ratio vs SLA ===\n";
  viol.print();
  std::cout << "\nShape check: SMIless flat + cheapest + (near) violation-free;\n"
               "Orion's cost gap narrows as the SLA loosens.\n";
  return 0;
}
