// Reproduces Fig. 13: the co-optimization ablations.
//  (a) SMIless-No-DAG warms every function simultaneously off the
//      inter-arrival prediction instead of offsetting inits along the DAG
//      (paper: 39% higher cost). The gap appears where pre-warm mode is
//      active, i.e. sparse arrivals, so this table uses a sparse trace.
//  (b) SMIless-Homo restricts configurations to the CPU backend (paper: SLA
//      violations up to 22%). Our catalog's 16-core latencies are faster
//      relative to a 2 s SLA than the paper's testbed, so the effect is
//      exposed at a proportionally tighter SLA.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

namespace {

workload::Trace sparse_trace(const apps::App& app, double duration) {
  // Near-periodic 10 s gaps: the regime where just-in-time pre-warming is
  // both active (T+I fits well inside the gap) and predictable.
  Rng rng(77 ^ std::hash<std::string>{}(app.name));
  return workload::generate_regular_trace(10.0, 0.05, duration, rng);
}

}  // namespace

int main() {
  const double duration = bench_duration();

  std::cout << "=== Fig. 13a: DAG-aware pre-warming (sparse trace, mean IT ~10 s) ===\n";
  TextTable fig_a({"Variant", "WL1 ($)", "WL2 ($)", "WL3 ($)", "total ($)", "vs SMIless",
                   "violations"});
  double base_total = 0.0;
  for (const auto kind : {baselines::PolicyKind::Smiless, baselines::PolicyKind::SmilessNoDag}) {
    double total = 0.0;
    long violated = 0, submitted = 0;
    std::vector<std::string> row{baselines::policy_kind_name(kind)};
    for (const auto& app : apps::make_all_workloads(2.0)) {
      const auto r = run_cell(kind, app, sparse_trace(app, duration), /*use_lstm=*/false);
      row.push_back(TextTable::num(r.cost, 4));
      total += r.cost;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      submitted += r.submitted;
    }
    if (kind == baselines::PolicyKind::Smiless) base_total = total;
    row.push_back(TextTable::num(total, 4));
    row.push_back(TextTable::num(total / base_total, 2) + "x");
    row.push_back(pct(static_cast<double>(violated) / std::max<long>(submitted, 1)));
    fig_a.add_row(row);
  }
  fig_a.print();

  std::cout << "\n=== Fig. 13b: heterogeneous backends (SLA sweep, standard traces) ===\n";
  TextTable fig_b({"SLA (s)", "SMIless cost ($)", "SMIless viol.", "Homo cost ($)",
                   "Homo viol."});
  for (double sla : {0.5, 1.0, 2.0}) {
    double cost[2] = {0.0, 0.0};
    long violated[2] = {0, 0}, submitted[2] = {0, 0};
    int idx = 0;
    for (const auto kind :
         {baselines::PolicyKind::Smiless, baselines::PolicyKind::SmilessHomo}) {
      for (const auto& app : apps::make_all_workloads(sla)) {
        const auto r = run_cell(kind, app, trace_for(app, duration), /*use_lstm=*/false);
        cost[idx] += r.cost;
        violated[idx] += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
        submitted[idx] += r.submitted;
      }
      ++idx;
    }
    fig_b.add_row({TextTable::num(sla, 1), TextTable::num(cost[0], 4),
                   pct(static_cast<double>(violated[0]) / submitted[0]),
                   TextTable::num(cost[1], 4),
                   pct(static_cast<double>(violated[1]) / submitted[1])});
  }
  fig_b.print();
  std::cout << "\nShape check: No-DAG costs more where pre-warming is active; Homo's\n"
               "violations blow up once the SLA outpaces the CPU backend.\n";
  return 0;
}
