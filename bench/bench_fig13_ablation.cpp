// Reproduces Fig. 13: the co-optimization ablations.
//  (a) SMIless-No-DAG warms every function simultaneously off the
//      inter-arrival prediction instead of offsetting inits along the DAG
//      (paper: 39% higher cost). The gap appears where pre-warm mode is
//      active, i.e. sparse arrivals, so this table uses a sparse trace.
//  (b) SMIless-Homo restricts configurations to the CPU backend (paper: SLA
//      violations up to 22%). Our catalog's 16-core latencies are faster
//      relative to a 2 s SLA than the paper's testbed, so the effect is
//      exposed at a proportionally tighter SLA.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration();

  // Fig. 13a grid: near-periodic 10 s gaps — the regime where just-in-time
  // pre-warming is both active (T+I fits inside the gap) and predictable.
  exp::ExperimentGrid sparse;
  sparse.base = base_config(2.0, duration);
  sparse.base.use_lstm = false;
  sparse.base.trace.kind = "regular";
  sparse.base.trace.interval = 10.0;
  sparse.base.trace.jitter = 0.05;
  sparse.base.trace.seed = 77;
  sparse.policies = {"smiless", "smiless-no-dag"};
  sparse.apps = workload_names();
  const auto sparse_cells = shared_runner().run(sparse);

  std::cout << "=== Fig. 13a: DAG-aware pre-warming (sparse trace, mean IT ~10 s) ===\n";
  TextTable fig_a({"Variant", "WL1 ($)", "WL2 ($)", "WL3 ($)", "total ($)", "vs SMIless",
                   "violations"});
  double base_total = 0.0;
  for (const auto& policy : sparse.policies) {
    double total = 0.0;
    long violated = 0, submitted = 0;
    std::vector<std::string> row{policy_display(policy)};
    for (const auto& app : sparse.apps) {
      const auto& r = cell_for(sparse_cells, policy, app).result;
      row.push_back(TextTable::num(r.cost, 4));
      total += r.cost;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      submitted += r.submitted;
    }
    if (policy == "smiless") base_total = total;
    row.push_back(TextTable::num(total, 4));
    row.push_back(TextTable::num(total / base_total, 2) + "x");
    row.push_back(pct(static_cast<double>(violated) / std::max<long>(submitted, 1)));
    fig_a.add_row(row);
  }
  fig_a.print();

  // Fig. 13b grid: standard traces, SLA axis.
  exp::ExperimentGrid homo;
  homo.base = base_config(2.0, duration);
  homo.base.use_lstm = false;
  homo.policies = {"smiless", "smiless-homo"};
  homo.apps = workload_names();
  homo.slas = {0.5, 1.0, 2.0};
  const auto homo_cells = shared_runner().run(homo);

  std::cout << "\n=== Fig. 13b: heterogeneous backends (SLA sweep, standard traces) ===\n";
  TextTable fig_b({"SLA (s)", "SMIless cost ($)", "SMIless viol.", "Homo cost ($)",
                   "Homo viol."});
  for (const double sla : homo.slas) {
    double cost[2] = {0.0, 0.0};
    long violated[2] = {0, 0}, submitted[2] = {0, 0};
    for (std::size_t idx = 0; idx < homo.policies.size(); ++idx) {
      for (const auto& cell : homo_cells) {
        if (cell.config.policy != homo.policies[idx] || cell.config.sla != sla) continue;
        cost[idx] += cell.result.cost;
        violated[idx] +=
            static_cast<long>(cell.result.violation_ratio * cell.result.submitted + 0.5);
        submitted[idx] += cell.result.submitted;
      }
    }
    fig_b.add_row({TextTable::num(sla, 1), TextTable::num(cost[0], 4),
                   pct(static_cast<double>(violated[0]) / submitted[0]),
                   TextTable::num(cost[1], 4),
                   pct(static_cast<double>(violated[1]) / submitted[1])});
  }
  fig_b.print();
  std::cout << "\nShape check: No-DAG costs more where pre-warming is active; Homo's\n"
               "violations blow up once the SLA outpaces the CPU backend.\n";
  return 0;
}
