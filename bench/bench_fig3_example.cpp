// Reproduces the Fig. 3 motivating example: a three-function pipeline with a
// 6.5 s SLA serving two invocations that arrive 2 s apart. Orion plans under
// the perfect-pre-warming assumption and must double instances when the gap
// is short; IceBreaker manages each function in isolation and parks them
// warm on its efficiency-preferred hardware; the optimal co-design uses
// adaptive pre-warming. Paper numbers: optimal is ~37.7% cheaper than Orion
// and IceBreaker lands ~33% above optimal.
#include <limits>

#include "apps/catalog.hpp"
#include "bench/bench_common.hpp"
#include "core/strategy_optimizer.hpp"

using namespace smiless;

namespace {

constexpr double kSla = 6.5;
constexpr double kInterarrival = 2.0;

std::vector<perf::FunctionPerf> pipeline() {
  return {apps::model_by_name("IR"), apps::model_by_name("DB"), apps::model_by_name("TRS")};
}

double chain_latency(const core::ChainSolution& s) { return s.latency; }

}  // namespace

int main() {
  const perf::Pricing pricing;
  const auto fns = pipeline();

  // --- Orion: perfect-overlap cost model; two concurrent instances per
  // function once the second invocation lands inside T+I.
  core::StrategyOptimizer orion_opt;
  orion_opt.set_cost_model(core::CostModel::AlwaysPrewarm);
  const auto orion = orion_opt.optimize_chain(fns, kInterarrival, kSla);
  double orion_cost = 0.0;
  for (const auto& d : orion.decisions)
    orion_cost += 2.0 * (d.init_time + d.inference_time) * pricing.per_second(d.config);

  // --- IceBreaker: "individually manages the resource configuration and
  // cold-start policy for each function" (§II-C2) — every function
  // independently minimises its own isolated cost of warming up ahead of
  // the window and staying alive through both invocations, with no
  // awareness of the DAG (so no init/inference overlap is exploited).
  double ice_cost = 0.0, ice_latency = 0.0;
  for (const auto& fn : fns) {
    perf::HwConfig best{};
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& c : perf::default_config_space()) {
      const double isolated =
          (fn.init_time(c, 3.0) + 2.0 * fn.inference_time(c, 1) + kInterarrival) *
          pricing.per_second(c);
      if (isolated < best_cost) {
        best_cost = isolated;
        best = c;
      }
    }
    ice_cost += best_cost;
    ice_latency += fn.inference_time(best, 1);
  }

  // --- Optimal: exhaustive joint search with adaptive cold-start costs.
  core::StrategyOptimizer adaptive;
  const auto opt = adaptive.optimize_chain_exhaustive(fns, kInterarrival, kSla);
  const double opt_cost = 2.0 * opt.cost;  // two invocations

  std::cout << "=== Fig. 3: two invocations, IT = 2 s, SLA = 6.5 s ===\n";
  TextTable t({"Approach", "cost ($1e-4)", "vs optimal", "E2E latency (s)", "SLA ok"});
  auto row = [&](const std::string& name, double cost, double latency) {
    t.add_row({name, TextTable::num(cost * 1e4, 3), TextTable::num(cost / opt_cost, 2) + "x",
               TextTable::num(latency, 2), latency <= kSla ? "yes" : "NO"});
  };
  row("Orion", orion_cost, chain_latency(orion));
  row("IceBreaker", ice_cost, ice_latency);
  row("Optimal", opt_cost, chain_latency(opt));
  t.print();
  std::cout << "\nPaper shape: Orion ~1.6x optimal (37.7% saving), IceBreaker ~1.33x optimal.\n";
  return 0;
}
