// Ablation of the runtime robustness extensions (DESIGN.md §6): each knob
// that deviates from the paper's deterministic formulas is disabled in
// isolation, and the cost / violation impact is measured on the standard
// Azure-like traces plus the Fig. 14 burst window. This quantifies what
// each extension buys under stochastic arrivals.
#include "bench/bench_common.hpp"
#include "core/smiless_policy.hpp"

using namespace smiless;
using namespace smiless::bench;

namespace {

struct Variant {
  std::string name;
  core::SmilessOptions options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  core::SmilessOptions base;
  base.use_lstm = false;
  out.push_back({"full runtime (defaults)", base});

  auto v = base;
  v.sla_margin = 1.0;
  out.push_back({"no SLA planning margin", v});

  v = base;
  v.variability_aware = false;
  out.push_back({"no gap-variability awareness", v});

  v = base;
  v.autoscaler_init_weight = 0.0;
  out.push_back({"pure Eq.(7) scale-out (no init term)", v});

  v = base;
  v.prewarm_hold = 0.0;
  out.push_back({"no Case-I hold (unload instantly)", v});

  v = base;
  v.optimizer.prewarm_margin = 1.0;
  out.push_back({"paper mode boundary (margin = 1)", v});

  v = base;
  v.enable_autoscaler = false;
  out.push_back({"no auto-scaler at all", v});
  return out;
}

/// A cell that runs the SMIless runtime with this variant's options.
exp::ExperimentConfig variant_cell(const Variant& variant, exp::ExperimentConfig cfg) {
  const core::SmilessOptions options = variant.options;
  cfg.label = variant.name;
  cfg.use_lstm = false;
  cfg.policy_override = [options](const exp::CellContext& ctx) {
    return std::make_shared<core::SmilessPolicy>("SMIless", ctx.profiles.for_app(ctx.app),
                                                 options, ctx.pool);
  };
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration(400.0);
  const auto all = variants();

  // Per variant: three steady preset cells (WL1-3), one burst cell and one
  // sparse near-periodic cell — the regimes where the hold, the variability
  // awareness and the mode margin actually engage. One flat list, one
  // parallel sweep.
  std::vector<exp::ExperimentConfig> cells_cfg;
  for (const auto& variant : all) {
    for (const auto& app : workload_names()) {
      auto cfg = base_config(2.0, duration);
      cfg.app = app;
      cells_cfg.push_back(variant_cell(variant, cfg));
    }
    auto burst = base_config(2.0, 60.0);
    burst.app = "wl3";
    burst.trace.kind = "burst";
    burst.trace.quiet_rate = 0.5;
    burst.trace.peak_rate = 12.0;
    burst.trace.seed = 37;
    cells_cfg.push_back(variant_cell(variant, burst));

    auto sparse = base_config(2.0, duration);
    sparse.app = "wl3";
    sparse.trace.kind = "regular";
    sparse.trace.interval = 10.0;
    sparse.trace.jitter = 0.05;
    sparse.trace.seed = 91;
    cells_cfg.push_back(variant_cell(variant, sparse));
  }
  const auto cells = shared_runner().run(cells_cfg);

  std::cout << "=== Design-choice ablation: cost & violations per disabled extension ===\n";
  TextTable table({"Variant", "steady cost ($)", "steady viol.", "burst cost ($)",
                   "burst viol.", "sparse cost ($)", "sparse viol."});
  const std::size_t per_variant = workload_names().size() + 2;
  for (std::size_t v = 0; v < all.size(); ++v) {
    double steady_cost = 0.0;
    long steady_violated = 0, steady_submitted = 0;
    for (std::size_t j = 0; j < workload_names().size(); ++j) {
      const auto& r = cells[v * per_variant + j].result;
      steady_cost += r.cost;
      steady_violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      steady_submitted += r.submitted;
    }
    const auto& rb = cells[v * per_variant + workload_names().size()].result;
    const auto& rs = cells[v * per_variant + workload_names().size() + 1].result;
    table.add_row({all[v].name, TextTable::num(steady_cost, 4),
                   pct(static_cast<double>(steady_violated) / steady_submitted),
                   TextTable::num(rb.cost, 4), pct(rb.violation_ratio),
                   TextTable::num(rs.cost, 4), pct(rs.violation_ratio)});
  }
  table.print();
  std::cout << "\nEach row disables one extension; the first row is the shipped default.\n";
  return 0;
}
