// Ablation of the runtime robustness extensions (DESIGN.md §6): each knob
// that deviates from the paper's deterministic formulas is disabled in
// isolation, and the cost / violation impact is measured on the standard
// Azure-like traces plus the Fig. 14 burst window. This quantifies what
// each extension buys under stochastic arrivals.
#include "bench/bench_common.hpp"
#include "core/smiless_policy.hpp"

using namespace smiless;
using namespace smiless::bench;

namespace {

struct Variant {
  std::string name;
  core::SmilessOptions options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  core::SmilessOptions base;
  base.use_lstm = false;
  out.push_back({"full runtime (defaults)", base});

  auto v = base;
  v.sla_margin = 1.0;
  out.push_back({"no SLA planning margin", v});

  v = base;
  v.variability_aware = false;
  out.push_back({"no gap-variability awareness", v});

  v = base;
  v.autoscaler_init_weight = 0.0;
  out.push_back({"pure Eq.(7) scale-out (no init term)", v});

  v = base;
  v.prewarm_hold = 0.0;
  out.push_back({"no Case-I hold (unload instantly)", v});

  v = base;
  v.optimizer.prewarm_margin = 1.0;
  out.push_back({"paper mode boundary (margin = 1)", v});

  v = base;
  v.enable_autoscaler = false;
  out.push_back({"no auto-scaler at all", v});
  return out;
}

}  // namespace

int main() {
  const double duration = bench_duration(400.0);
  std::cout << "=== Design-choice ablation: cost & violations per disabled extension ===\n";
  TextTable table({"Variant", "steady cost ($)", "steady viol.", "burst cost ($)",
                   "burst viol.", "sparse cost ($)", "sparse viol."});

  for (const auto& variant : variants()) {
    double steady_cost = 0.0;
    long steady_violated = 0, steady_submitted = 0;
    for (const auto& app : apps::make_all_workloads(2.0)) {
      const auto trace = trace_for(app, duration);
      auto policy = std::make_shared<core::SmilessPolicy>(
          "SMIless", shared_profiles().for_app(app), variant.options, shared_pool());
      baselines::ExperimentOptions eo;
      const auto r = baselines::run_experiment(app, trace, policy, eo);
      steady_cost += r.cost;
      steady_violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      steady_submitted += r.submitted;
    }

    const auto app = apps::make_voice_assistant(2.0);
    Rng rng(37);
    const auto burst = workload::generate_burst_window(0.5, 12.0, rng);
    auto policy = std::make_shared<core::SmilessPolicy>(
        "SMIless", shared_profiles().for_app(app), variant.options, shared_pool());
    baselines::ExperimentOptions eo;
    const auto rb = baselines::run_experiment(app, burst, policy, eo);

    // Near-periodic sparse arrivals: the pre-warm-mode regime where the
    // hold, the variability awareness and the mode margin actually engage.
    Rng srng(91);
    const auto sparse = workload::generate_regular_trace(10.0, 0.05, duration, srng);
    auto sparse_policy = std::make_shared<core::SmilessPolicy>(
        "SMIless", shared_profiles().for_app(app), variant.options, shared_pool());
    const auto rs = baselines::run_experiment(app, sparse, sparse_policy, eo);

    table.add_row({variant.name, TextTable::num(steady_cost, 4),
                   pct(static_cast<double>(steady_violated) / steady_submitted),
                   TextTable::num(rb.cost, 4), pct(rb.violation_ratio),
                   TextTable::num(rs.cost, 4), pct(rs.violation_ratio)});
  }
  table.print();
  std::cout << "\nEach row disables one extension; the first row is the shipped default.\n";
  return 0;
}
