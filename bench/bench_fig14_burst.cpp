// Reproduces Fig. 14: SMIless' adaptation inside a 60-second bursty window.
// (a) the number of pods tracks the number of invocations; (b) the
// CPU-to-GPU instance ratio rises with the invocation count (GPUs batch so
// few GPU instances suffice; scale-out adds CPU pods).
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  auto cfg = base_config(2.0, 60.0);
  cfg.app = "wl3";
  cfg.policy = "smiless";
  cfg.use_lstm = false;
  cfg.trace.kind = "burst";
  cfg.trace.quiet_rate = 0.5;
  cfg.trace.peak_rate = 12.0;
  cfg.trace.seed = 37;
  const auto r =
      shared_runner().run(std::vector<exp::ExperimentConfig>{cfg}).front().result;

  std::cout << "=== Fig. 14: burst window (quiet 0.5 rps -> peak 12 rps -> decay) ===\n";
  TextTable table({"t (s)", "invocations", "pods", "CPU pods", "GPU pods", "CPU:GPU"});
  for (const auto& w : r.windows) {
    if (w.window_start >= 60.0) break;
    const std::string ratio = w.instances_gpu > 0
                                  ? TextTable::num(static_cast<double>(w.instances_cpu) /
                                                       w.instances_gpu, 2)
                                  : (w.instances_cpu > 0 ? "all-CPU" : "-");
    table.add_row({TextTable::num(w.window_start, 0), std::to_string(w.arrivals),
                   std::to_string(w.instances_total), std::to_string(w.instances_cpu),
                   std::to_string(w.instances_gpu), ratio});
  }
  table.print();
  std::cout << "\nBurst summary: " << r.submitted << " requests, violation ratio "
            << pct(r.violation_ratio) << ", cost $" << TextTable::num(r.cost, 4) << "\n"
            << "Shape check: pods track invocations; CPU share grows at the peak.\n";
  return 0;
}
