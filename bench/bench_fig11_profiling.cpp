// Reproduces Fig. 11: (a) how the robustness factor n in the mu + n*sigma
// initialization estimate drives the SLA violation ratio (paper: the plain
// mean yields up to 34% violations, n = 3 removes them); (b) the SMAPE of
// the fitted inference-time models (paper: every function < 20%, average
// < 8%, GPU fits tighter than CPU).
#include "bench/bench_common.hpp"
#include "core/smiless_policy.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration(400.0);
  const std::vector<double> sigmas = {0.0, 1.0, 2.0, 3.0};

  // Each n is a policy-override cell: same SMIless runtime, hand-tuned
  // estimator options. The override keeps the whole sweep on the one
  // parallel runner even though these variants have no config-file name.
  std::vector<exp::ExperimentConfig> cells_cfg;
  for (const double n : sigmas) {
    for (const auto& app : workload_names()) {
      auto cfg = base_config(2.0, duration);
      cfg.app = app;
      cfg.use_lstm = false;
      cfg.trace.kind = "regular";
      cfg.trace.interval = 10.0;
      cfg.trace.jitter = 0.03;
      cfg.trace.seed = 91;
      cfg.label = "n=" + TextTable::num(n, 0) + "/app=" + app;
      cfg.policy_override = [n](const exp::CellContext& ctx) {
        core::SmilessOptions options;
        options.use_lstm = false;
        options.optimizer.n_sigma = n;
        options.prewarm_safety = 0.0;  // isolate the estimator's effect
        return std::make_shared<core::SmilessPolicy>(
            "SMIless(n=" + TextTable::num(n, 0) + ")",
            ctx.profiles.for_app(ctx.app), options, ctx.pool);
      };
      cells_cfg.push_back(std::move(cfg));
    }
  }
  const auto cells = shared_runner().run(cells_cfg);

  std::cout << "=== Fig. 11a: SLA violations vs init-estimate robustness (n in mu+n*sigma) ===\n"
            << "(near-periodic sparse trace: every function runs in pre-warm mode, so the\n"
            << " init estimate directly times the overlap window, as in the paper)\n";
  TextTable fig_a({"n", "violation ratio", "total cost ($)"});
  const std::size_t napps = workload_names().size();
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    long violated = 0, submitted = 0;
    double cost = 0.0;
    for (std::size_t j = 0; j < napps; ++j) {
      const auto& r = cells[i * napps + j].result;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      submitted += r.submitted;
      cost += r.cost;
    }
    fig_a.add_row({TextTable::num(sigmas[i], 0),
                   pct(static_cast<double>(violated) / submitted), TextTable::num(cost, 4)});
  }
  fig_a.print();

  std::cout << "\n=== Fig. 11b: inference-time fit accuracy (SMAPE, 25 CPU + 50 GPU samples) ===\n";
  TextTable fig_b({"Function", "SMAPE CPU (%)", "SMAPE GPU (%)"});
  double cpu_sum = 0.0, gpu_sum = 0.0;
  const auto& results = shared_runner().profiles(2024).results();
  for (const auto& r : results) {
    fig_b.add_row({r.fitted.name, TextTable::num(r.smape_cpu, 2), TextTable::num(r.smape_gpu, 2)});
    cpu_sum += r.smape_cpu;
    gpu_sum += r.smape_gpu;
  }
  fig_b.add_row({"AVERAGE", TextTable::num(cpu_sum / results.size(), 2),
                 TextTable::num(gpu_sum / results.size(), 2)});
  fig_b.print();
  std::cout << "\nShape check: violations shrink monotonically with n; all SMAPE < 20%,\n"
               "average < 8%.\n";
  return 0;
}
