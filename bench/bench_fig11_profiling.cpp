// Reproduces Fig. 11: (a) how the robustness factor n in the mu + n*sigma
// initialization estimate drives the SLA violation ratio (paper: the plain
// mean yields up to 34% violations, n = 3 removes them); (b) the SMAPE of
// the fitted inference-time models (paper: every function < 20%, average
// < 8%, GPU fits tighter than CPU).
#include "bench/bench_common.hpp"
#include "core/smiless_policy.hpp"
#include "profiler/offline_profiler.hpp"

using namespace smiless;
using namespace smiless::bench;

int main() {
  const double duration = bench_duration(400.0);

  std::cout << "=== Fig. 11a: SLA violations vs init-estimate robustness (n in mu+n*sigma) ===\n"
            << "(near-periodic sparse trace: every function runs in pre-warm mode, so the\n"
            << " init estimate directly times the overlap window, as in the paper)\n";
  TextTable fig_a({"n", "violation ratio", "total cost ($)"});
  for (double n : {0.0, 1.0, 2.0, 3.0}) {
    long violated = 0, submitted = 0;
    double cost = 0.0;
    for (const auto& app : apps::make_all_workloads(2.0)) {
      Rng trng(91 ^ std::hash<std::string>{}(app.name));
      const auto trace = workload::generate_regular_trace(10.0, 0.03, duration, trng);
      core::SmilessOptions options;
      options.use_lstm = false;
      options.optimizer.n_sigma = n;
      options.prewarm_safety = 0.0;  // isolate the estimator's effect
      auto policy = std::make_shared<core::SmilessPolicy>(
          "SMIless(n=" + TextTable::num(n, 0) + ")", shared_profiles().for_app(app), options,
          shared_pool());
      baselines::ExperimentOptions eo;
      const auto r = baselines::run_experiment(app, trace, policy, eo);
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      submitted += r.submitted;
      cost += r.cost;
    }
    fig_a.add_row({TextTable::num(n, 0), pct(static_cast<double>(violated) / submitted),
                   TextTable::num(cost, 4)});
  }
  fig_a.print();

  std::cout << "\n=== Fig. 11b: inference-time fit accuracy (SMAPE, 25 CPU + 50 GPU samples) ===\n";
  TextTable fig_b({"Function", "SMAPE CPU (%)", "SMAPE GPU (%)"});
  double cpu_sum = 0.0, gpu_sum = 0.0;
  const auto& results = shared_profiles().results();
  for (const auto& r : results) {
    fig_b.add_row({r.fitted.name, TextTable::num(r.smape_cpu, 2), TextTable::num(r.smape_gpu, 2)});
    cpu_sum += r.smape_cpu;
    gpu_sum += r.smape_gpu;
  }
  fig_b.add_row({"AVERAGE", TextTable::num(cpu_sum / results.size(), 2),
                 TextTable::num(gpu_sum / results.size(), 2)});
  fig_b.print();
  std::cout << "\nShape check: violations shrink monotonically with n; all SMAPE < 20%,\n"
               "average < 8%.\n";
  return 0;
}
