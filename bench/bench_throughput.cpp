// Simulator throughput baseline: one large colocated cell — hundreds of
// machines, thousands of DAG applications, a multi-hour Poisson + burst
// trace per app — driven end-to-end through the Platform on both event
// queue implementations (the calendar queue that serves the hot path, and
// the pre-calendar binary-heap + std::map reference), plus the intra-cell
// sharding axis (ShardedPlatform at lanes 1/2/4/8, streaming per-window
// arrival injection) and a pure-queue hold-model microbench that isolates
// the data structure from platform work. Records events/sec, wall time,
// peak RSS, EngineStats and CalendarStats into BENCH_throughput.json (see
// DESIGN.md §13–14).
//
// Correctness gates: both queue impls must produce bit-identical
// simulation trajectories, and the lanes=1 sharded run must reproduce the
// monolithic trajectory's counts exactly, or the bench aborts. (Lanes > 1
// is a different cell — the fleet is partitioned — so its counts are
// reported per lane count, not gated against the monolithic run.)
//
// Timing and RSS are measurements of the harness itself, not simulated
// behaviour; the trajectory counts in the artifact are byte-stable for a
// given config, the measured sections are not. Every end-to-end cell and
// every microbench runs in a forked child process: ru_maxrss is a
// process-lifetime high-water mark, and a multi-GB run leaves the parent
// allocator's arena grown and fragmented — without isolation each
// measurement inherits its predecessors' heap and both RSS and events/s
// become artifacts of run *order* rather than of the configuration.
//
// Knobs: --apps N --machines N --nodes N --duration S --events N --out PATH
// (--duration / --lane-threads are shared bench flags, like every bench
// binary).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/catalog.hpp"
#include "bench/bench_common.hpp"
#include "cluster/cluster.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "prof/profiler.hpp"
#include "serverless/plan.hpp"
#include "serverless/platform.hpp"
#include "serverless/platform_view.hpp"
#include "serverless/policy.hpp"
#include "serverless/sharding.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

using namespace smiless;

namespace {

// getrusage's ru_maxrss is the process-lifetime high-water mark (KiB on
// Linux); not in the detlint catalog because it cannot order or time
// anything simulated.
double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

double now_seconds() {
  // detlint:allow(wall-clock) harness throughput measurement; stays out of the simulation
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

const char* impl_name(sim::Engine::QueueImpl impl) {
  return impl == sim::Engine::QueueImpl::Calendar ? "calendar" : "binary_heap";
}

/// Run `fn` in a forked child and ship its trivially-copyable result back
/// over a pipe, so each measurement starts from a pristine heap and its
/// ru_maxrss describes only that configuration. The simulation itself is
/// deterministic either way — isolation only de-noises the measured
/// sections. Falls back to in-process execution if fork is unavailable.
template <typename R, typename Fn>
R run_isolated(Fn&& fn) {
  static_assert(std::is_trivially_copyable_v<R>);
  int fds[2];
  if (pipe(fds) != 0) return fn();
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return fn();
  }
  if (pid == 0) {
    close(fds[0]);
    const R r = fn();
    const char* p = reinterpret_cast<const char*>(&r);
    std::size_t left = sizeof(R);
    while (left > 0) {
      const ssize_t n = write(fds[1], p, left);
      if (n <= 0) _exit(3);
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    _exit(0);
  }
  close(fds[1]);
  R r{};
  char* p = reinterpret_cast<char*>(&r);
  std::size_t got = 0;
  while (got < sizeof(R)) {
    const ssize_t n = read(fds[0], p + got, sizeof(R) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != sizeof(R) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_throughput: isolated child failed (status %d)\n", status);
    std::exit(1);
  }
  return r;
}

struct CellConfig {
  std::size_t apps = 1500;
  std::size_t machines = 320;
  std::size_t nodes_per_app = 3;
  double duration = 1800.0;
  std::uint64_t seed = 42;
};

/// Always-warm policy with a finite keep-alive: enough lifecycle churn to
/// exercise the cancel/tombstone path (keep-alive timers are cancelled on
/// every reuse) without the full SMIless optimizer dominating the profile.
class KeepWarmPolicy final : public serverless::Policy {
 public:
  std::string name() const override { return "bench-keepwarm"; }
  void on_deploy(serverless::AppId app, const apps::App& spec,
                 serverless::PlatformView& platform) override {
    for (std::size_t n = 0; n < spec.dag.size(); ++n) {
      serverless::FunctionPlan plan;
      plan.keepalive = 60.0;
      plan.max_batch = 4;
      platform.set_plan(app, static_cast<dag::NodeId>(n), plan);
    }
  }
};

struct EndToEnd {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  long long submitted = 0;
  long long completed = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double rss_after_mb = 0.0;
  sim::CalendarStats cal;  // calendar impl only
  prof::Snapshot profile;  // self-profiler wall-time breakdown
};

/// Drive run_until in visible chunks when --progress is on: same trajectory
/// (run_until is re-entrant on sim time), plus a running events/sec + ETA
/// line on stderr. ETA extrapolates wall time per simulated second.
void run_with_progress(sim::Engine& engine, double end, const char* label, double t0) {
  if (!bench::bench_args().progress) {
    engine.run_until(end);
    return;
  }
  constexpr int kChunks = 50;
  for (int k = 1; k <= kChunks; ++k) {
    engine.run_until(end * k / kChunks);
    const double elapsed = now_seconds() - t0;
    const double frac = static_cast<double>(k) / kChunks;
    const double eta = frac > 0.0 ? elapsed * (1.0 - frac) / frac : 0.0;
    const double rate =
        elapsed > 0.0 ? static_cast<double>(engine.stats().fired) / elapsed : 0.0;
    std::fprintf(stderr, "\rbench_throughput: [%s] %3.0f%%  %.2fM events/s  ETA %5.1fs   ",
                 label, 100.0 * frac, rate / 1e6, eta);
  }
  std::fprintf(stderr, "\n");
}

EndToEnd run_cell(sim::Engine::QueueImpl impl, const CellConfig& cc,
                  const std::vector<workload::Trace>& traces) {
  const double t0 = now_seconds();

  prof::Profiler profiler;
  sim::Engine engine(impl);
  engine.set_profiler(&profiler);
  cluster::Cluster cluster(cc.machines, cluster::MachineSpec{});
  Rng rng(cc.seed);
  serverless::PlatformOptions popt;
  popt.prof = &profiler;
  serverless::Platform platform(engine, cluster, perf::Pricing{}, rng, popt);
  auto policy = std::make_shared<KeepWarmPolicy>();

  double horizon = 0.0;
  EndToEnd r;
  {
    // Root scope: every instrumented site below nests under it, so the
    // profile section's exclusive times sum to this bracket exactly.
    prof::ScopeTimer root(&profiler, prof::Site::CellRun);
    for (std::size_t i = 0; i < cc.apps; ++i) {
      apps::App app = apps::make_synthetic_pipeline(cc.nodes_per_app, /*sla=*/2.0);
      const serverless::AppId id = platform.deploy(std::move(app), policy);
      for (SimTime t : traces[i].arrivals) platform.submit_request(id, t);
      r.submitted += static_cast<long long>(traces[i].arrivals.size());
      horizon = std::max(horizon,
                         static_cast<double>(traces[i].counts.size()) * traces[i].window);
    }
    const double end = horizon + 120.0;  // drain slack
    run_with_progress(engine, end, impl_name(impl), t0);
    platform.finalize(end);
  }

  r.wall_seconds = now_seconds() - t0;
  r.profile = profiler.snapshot();
  r.scheduled = engine.stats().scheduled;
  r.fired = engine.stats().fired;
  r.cancelled = engine.stats().cancelled;
  r.events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.fired) / r.wall_seconds : 0.0;
  r.rss_after_mb = peak_rss_mb();
  if (const sim::CalendarStats* cs = engine.calendar_stats()) r.cal = *cs;
  for (std::size_t i = 0; i < cc.apps; ++i)
    r.completed += static_cast<long long>(
        platform.metrics(static_cast<serverless::AppId>(i)).completed.size());
  return r;
}

/// The same cell through ShardedPlatform: apps hash-partitioned into lanes,
/// arrivals injected per window barrier instead of scheduled upfront. With
/// one lane this is the monolithic simulation with a bounded live event set;
/// with more lanes the fleet is partitioned too.
EndToEnd run_sharded(int lanes, int lane_threads, const CellConfig& cc,
                     const std::vector<workload::Trace>& traces) {
  const double t0 = now_seconds();

  prof::Profiler profiler;
  serverless::ShardOptions so;
  so.lanes = lanes;
  so.lane_threads = lane_threads;
  so.seed = cc.seed;
  so.machines = cc.machines;
  so.prof = &profiler;
  serverless::ShardedPlatform sharded(std::move(so));

  double horizon = 0.0;
  EndToEnd r;
  {
    prof::ScopeTimer root(&profiler, prof::Site::CellRun);
    for (std::size_t i = 0; i < cc.apps; ++i) {
      apps::App app = apps::make_synthetic_pipeline(cc.nodes_per_app, /*sla=*/2.0);
      sharded.add_app(std::move(app), std::make_shared<KeepWarmPolicy>(),
                      traces[i].arrivals);
      r.submitted += static_cast<long long>(traces[i].arrivals.size());
      horizon = std::max(horizon,
                         static_cast<double>(traces[i].counts.size()) * traces[i].window);
    }
    sharded.run(horizon + 120.0);
  }

  r.wall_seconds = now_seconds() - t0;
  r.profile = profiler.snapshot();
  const sim::EngineStats stats = sharded.engine_stats();
  r.scheduled = stats.scheduled;
  r.fired = stats.fired;
  r.cancelled = stats.cancelled;
  r.events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.fired) / r.wall_seconds : 0.0;
  r.rss_after_mb = peak_rss_mb();
  for (std::size_t i = 0; i < cc.apps; ++i)
    r.completed +=
        static_cast<long long>(sharded.metrics(static_cast<int>(i)).completed.size());
  return r;
}

/// Classic hold-model microbench: keep `live` events pending, repeatedly
/// pop the earliest and schedule a replacement at now + exp(1). Isolates
/// schedule/pop/cancel cost from platform callback work; with thousands
/// pending this is where the heap pays its O(log n) and its two map
/// allocations per event.
struct Micro {
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

Micro run_micro(sim::Engine::QueueImpl impl, std::uint64_t total_events,
                std::size_t live, std::uint64_t seed) {
  sim::Engine engine(impl);
  Rng rng(seed);
  std::uint64_t fired = 0;
  std::vector<sim::EventId> cancellable;

  std::function<void()> hold = [&] {
    ++fired;
    if (fired + cancellable.size() < total_events) {
      engine.schedule_after(rng.exponential(1.0), hold);
      // A slice of events is scheduled and later cancelled, as keep-alive
      // timers are in the end-to-end cell.
      if ((fired & 7u) == 0u)
        cancellable.push_back(engine.schedule_after(rng.uniform(1.0, 30.0), [] {}));
      if (cancellable.size() >= 64) {
        for (sim::EventId id : cancellable) engine.cancel(id);
        cancellable.clear();
      }
    }
  };

  const double t0 = now_seconds();
  for (std::size_t i = 0; i < live; ++i) engine.schedule_after(rng.exponential(1.0), hold);
  engine.run();
  Micro m;
  m.events = engine.stats().fired;
  m.wall_seconds = now_seconds() - t0;
  m.events_per_sec =
      m.wall_seconds > 0.0 ? static_cast<double>(m.events) / m.wall_seconds : 0.0;
  return m;
}

json::Value end_to_end_json(const EndToEnd& r, bool with_calendar) {
  json::Value v = json::Value::object();
  v["wall_seconds"] = r.wall_seconds;
  v["events_per_sec"] = r.events_per_sec;
  v["peak_rss_mb"] = r.rss_after_mb;
  if (with_calendar) {
    json::Value cs = json::Value::object();
    cs["resizes"] = r.cal.resizes;
    cs["direct_searches"] = r.cal.direct_searches;
    cs["buckets"] = static_cast<std::uint64_t>(r.cal.buckets);
    cs["peak_live"] = static_cast<std::uint64_t>(r.cal.peak_live);
    v["calendar_stats"] = cs;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  CellConfig cc;
  std::uint64_t micro_events = 2'000'000;
  std::size_t micro_live = 10'000;
  std::string out_path = "BENCH_throughput.json";

  for (int i = 1; i < argc; ++i) {
    // --duration and the other harness knobs are the shared bench flags.
    if (bench::consume_shared_flag(argc, argv, i)) continue;
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_throughput: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--apps") == 0)
      cc.apps = static_cast<std::size_t>(std::atol(next("--apps")));
    else if (std::strcmp(argv[i], "--machines") == 0)
      cc.machines = static_cast<std::size_t>(std::atol(next("--machines")));
    else if (std::strcmp(argv[i], "--nodes") == 0)
      cc.nodes_per_app = static_cast<std::size_t>(std::atol(next("--nodes")));
    else if (std::strcmp(argv[i], "--events") == 0)
      micro_events = static_cast<std::uint64_t>(std::atoll(next("--events")));
    else if (std::strcmp(argv[i], "--out") == 0)
      out_path = next("--out");
    else {
      std::fprintf(stderr, "bench_throughput: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  cc.duration = bench::bench_duration(1800.0);

  // One trace set shared by both impls: identical arrivals in, identical
  // trajectory out.
  std::vector<workload::Trace> traces;
  traces.reserve(cc.apps);
  long long arrivals_total = 0;
  {
    Rng root(cc.seed);
    const std::vector<std::string> wl = bench::workload_names();
    for (std::size_t i = 0; i < cc.apps; ++i) {
      Rng child = root.fork(i + 1);
      const workload::TraceOptions topt =
          workload::preset_for_workload(wl[i % wl.size()], cc.duration);
      traces.push_back(workload::generate_trace(topt, child));
      arrivals_total += static_cast<long long>(traces.back().arrivals.size());
    }
  }
  std::fprintf(stderr,
               "bench_throughput: %zu apps x %zu nodes on %zu machines, %.0f s "
               "traces, %lld arrivals\n",
               cc.apps, cc.nodes_per_app, cc.machines, cc.duration, arrivals_total);

  const int lane_threads = bench::bench_args().lane_threads;
  const int lane_counts[] = {1, 2, 4, 8};
  std::vector<EndToEnd> sharded;
  for (const int lanes : lane_counts) {
    sharded.push_back(run_isolated<EndToEnd>(
        [&] { return run_sharded(lanes, lane_threads, cc, traces); }));
    std::fprintf(stderr, "bench_throughput: [sharded lanes=%d] %.2fs, %.0f events/s\n",
                 lanes, sharded.back().wall_seconds, sharded.back().events_per_sec);
  }

  const EndToEnd cal = run_isolated<EndToEnd>(
      [&] { return run_cell(sim::Engine::QueueImpl::Calendar, cc, traces); });
  std::fprintf(stderr, "bench_throughput: [e2e %s] %.2fs, %.0f events/s\n",
               impl_name(sim::Engine::QueueImpl::Calendar), cal.wall_seconds,
               cal.events_per_sec);
  const EndToEnd heap = run_isolated<EndToEnd>(
      [&] { return run_cell(sim::Engine::QueueImpl::BinaryHeap, cc, traces); });
  std::fprintf(stderr, "bench_throughput: [e2e %s] %.2fs, %.0f events/s\n",
               impl_name(sim::Engine::QueueImpl::BinaryHeap), heap.wall_seconds,
               heap.events_per_sec);

  // Correctness gate: the queue impl must be unobservable in the trajectory.
  if (cal.scheduled != heap.scheduled || cal.fired != heap.fired ||
      cal.cancelled != heap.cancelled || cal.completed != heap.completed) {
    std::fprintf(stderr,
                 "bench_throughput: IMPL DIVERGENCE calendar(%llu/%llu/%llu/%lld) "
                 "vs heap(%llu/%llu/%llu/%lld)\n",
                 static_cast<unsigned long long>(cal.scheduled),
                 static_cast<unsigned long long>(cal.fired),
                 static_cast<unsigned long long>(cal.cancelled), cal.completed,
                 static_cast<unsigned long long>(heap.scheduled),
                 static_cast<unsigned long long>(heap.fired),
                 static_cast<unsigned long long>(heap.cancelled), heap.completed);
    return 1;
  }

  // Legacy-equality gate: one lane is the monolithic cell — streaming
  // injection must be unobservable in the trajectory counts.
  const EndToEnd& one = sharded.front();
  if (one.scheduled != cal.scheduled || one.fired != cal.fired ||
      one.cancelled != cal.cancelled || one.completed != cal.completed) {
    std::fprintf(stderr,
                 "bench_throughput: SHARDING DIVERGENCE lanes=1(%llu/%llu/%llu/%lld) "
                 "vs monolithic(%llu/%llu/%llu/%lld)\n",
                 static_cast<unsigned long long>(one.scheduled),
                 static_cast<unsigned long long>(one.fired),
                 static_cast<unsigned long long>(one.cancelled), one.completed,
                 static_cast<unsigned long long>(cal.scheduled),
                 static_cast<unsigned long long>(cal.fired),
                 static_cast<unsigned long long>(cal.cancelled), cal.completed);
    return 1;
  }

  const Micro mcal = run_isolated<Micro>([&] {
    return run_micro(sim::Engine::QueueImpl::Calendar, micro_events, micro_live, cc.seed);
  });
  const Micro mheap = run_isolated<Micro>([&] {
    return run_micro(sim::Engine::QueueImpl::BinaryHeap, micro_events, micro_live, cc.seed);
  });
  std::fprintf(stderr,
               "bench_throughput: [micro] calendar %.0f events/s, heap %.0f "
               "events/s (%.2fx)\n",
               mcal.events_per_sec, mheap.events_per_sec,
               mheap.events_per_sec > 0.0 ? mcal.events_per_sec / mheap.events_per_sec
                                          : 0.0);

  json::Value doc = json::Value::object();
  doc["bench"] = "throughput";
  {
    json::Value cfg = json::Value::object();
    cfg["apps"] = static_cast<std::uint64_t>(cc.apps);
    cfg["machines"] = static_cast<std::uint64_t>(cc.machines);
    cfg["nodes_per_app"] = static_cast<std::uint64_t>(cc.nodes_per_app);
    cfg["trace_duration_s"] = cc.duration;
    cfg["seed"] = cc.seed;
    cfg["micro_events"] = micro_events;
    cfg["micro_live"] = static_cast<std::uint64_t>(micro_live);
    doc["config"] = cfg;
  }
  {
    // Byte-stable for a given config: pure simulation-domain counts, equal
    // across queue impls by the gate above.
    json::Value det = json::Value::object();
    det["arrivals_total"] = arrivals_total;
    det["requests_submitted"] = cal.submitted;
    det["requests_completed"] = cal.completed;
    det["events_scheduled"] = cal.scheduled;
    det["events_fired"] = cal.fired;
    det["events_cancelled"] = cal.cancelled;
    det["identical_across_impls"] = true;
    doc["deterministic"] = det;
  }
  doc["calendar"] = end_to_end_json(cal, /*with_calendar=*/true);
  doc["binary_heap"] = end_to_end_json(heap, /*with_calendar=*/false);
  {
    // The intra-cell sharding axis (DESIGN.md §14). lanes=1 is count-gated
    // against the monolithic run above; lanes>1 partitions the fleet, so
    // its counts describe a different (but equally deterministic) cell and
    // are recorded alongside the measurements.
    json::Value sh = json::Value::object();
    sh["lane_threads"] = static_cast<long long>(lane_threads);
    json::Value rows = json::Value::array();
    for (std::size_t i = 0; i < sharded.size(); ++i) {
      const EndToEnd& r = sharded[i];
      json::Value row = json::Value::object();
      row["lanes"] = static_cast<long long>(lane_counts[i]);
      row["wall_seconds"] = r.wall_seconds;
      row["events_per_sec"] = r.events_per_sec;
      row["peak_rss_mb"] = r.rss_after_mb;
      row["events_scheduled"] = r.scheduled;
      row["events_fired"] = r.fired;
      row["events_cancelled"] = r.cancelled;
      row["requests_completed"] = r.completed;
      rows.push_back(std::move(row));
    }
    sh["lanes"] = std::move(rows);
    sh["speedup_lanes8_vs_monolithic"] =
        cal.events_per_sec > 0.0 ? sharded.back().events_per_sec / cal.events_per_sec
                                 : 0.0;
    sh["note"] =
        "streaming per-window arrival injection bounds the live event set; on a "
        "single-core host any speedup over the monolithic run is algorithmic, not "
        "parallelism";
    doc["sharded"] = std::move(sh);
  }
  {
    json::Value micro = json::Value::object();
    json::Value a = json::Value::object();
    a["events"] = mcal.events;
    a["wall_seconds"] = mcal.wall_seconds;
    a["events_per_sec"] = mcal.events_per_sec;
    micro["calendar"] = a;
    json::Value b = json::Value::object();
    b["events"] = mheap.events;
    b["wall_seconds"] = mheap.wall_seconds;
    b["events_per_sec"] = mheap.events_per_sec;
    micro["binary_heap"] = b;
    micro["speedup"] =
        mheap.events_per_sec > 0.0 ? mcal.events_per_sec / mheap.events_per_sec : 0.0;
    doc["micro"] = micro;
  }
  doc["e2e_speedup"] =
      heap.events_per_sec > 0.0 ? cal.events_per_sec / heap.events_per_sec : 0.0;
  doc["peak_rss_mb"] = peak_rss_mb();
  {
    // Self-profiler breakdown (DESIGN.md §15). Wall-clock data: stable in
    // shape, not in values. The headline `coverage` is the calendar e2e
    // cell's Σ exclusive / root — the root scope brackets the whole cell,
    // so it is 1.0 by construction (the bench contract demands >= 0.9).
    // Sharded cells can exceed 1.0: lane wall time on worker threads
    // overlaps the coordinator's barrier wait.
    json::Value pr = json::Value::object();
    pr["coverage"] = prof::snapshot_to_json(cal.profile).get("coverage", 0.0);
    pr["calendar"] = prof::snapshot_to_json(cal.profile);
    pr["binary_heap"] = prof::snapshot_to_json(heap.profile);
    json::Value rows = json::Value::array();
    for (std::size_t i = 0; i < sharded.size(); ++i) {
      json::Value row = prof::snapshot_to_json(sharded[i].profile);
      row["lanes"] = static_cast<long long>(lane_counts[i]);
      rows.push_back(std::move(row));
    }
    pr["sharded"] = std::move(rows);
    doc["profile"] = std::move(pr);
  }

  json::save_file(doc, out_path);
  std::fprintf(stderr, "bench_throughput: wrote %s\n", out_path.c_str());

  if (!bench::bench_args().report_out.empty()) {
    // Profile-only HTML report through the generic sweep template: one
    // "cell" per measured configuration, no time series.
    json::Value payload = json::Value::object();
    payload["title"] = std::string("bench_throughput self-profile");
    payload["generator"] = std::string("bench_throughput");
    json::Value cells = json::Value::array();
    auto add = [&](const std::string& label, const prof::Snapshot& s) {
      json::Value cell = json::Value::object();
      cell["label"] = label;
      cell["policy"] = std::string("bench-keepwarm");
      cell["app"] = std::string("synthetic-pipeline");
      cell["seed"] = static_cast<long long>(cc.seed);
      cell["lanes"] = 1LL;
      cell["profile"] = prof::snapshot_to_json(s);
      cells.push_back(std::move(cell));
    };
    add("e2e calendar", cal.profile);
    add("e2e binary_heap", heap.profile);
    for (std::size_t i = 0; i < sharded.size(); ++i)
      add("sharded lanes=" + std::to_string(lane_counts[i]), sharded[i].profile);
    payload["cells"] = std::move(cells);
    std::ofstream os(bench::bench_args().report_out, std::ios::binary);
    if (!os.good()) {
      std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                   bench::bench_args().report_out.c_str());
      return 1;
    }
    os << exp::render_report(payload);
    std::fprintf(stderr, "bench_throughput: wrote %s\n",
                 bench::bench_args().report_out.c_str());
  }
  return 0;
}
