// Reproduces Fig. 2 (and prints Table I): warm/cold inference latency of the
// HAP, TG and TRS models on a 16-core CPU vs a full GPU, with the price
// ratio. Expected shape: ~10x warm speed-up on GPU, but cold-start latency
// on GPU exceeding the CPU's, at a GPU price ~8-16x the CPU's.
#include "apps/catalog.hpp"
#include "bench/bench_common.hpp"
#include "perfmodel/latency_model.hpp"

using namespace smiless;

int main() {
  const perf::Pricing pricing;
  const perf::HwConfig cpu16{perf::Backend::Cpu, 16, 0};
  const perf::HwConfig gpu100{perf::Backend::Gpu, 0, 100};

  std::cout << "=== Table I: inference model catalog (ground truth anchors) ===\n";
  TextTable catalog({"Function", "cpu1 (s)", "cpu16 (s)", "gpu10 (s)", "gpu100 (s)",
                     "init cpu (s)", "init gpu (s)"});
  for (const auto& fn : apps::model_catalog()) {
    catalog.add_row({fn.name,
                     TextTable::num(fn.inference_time({perf::Backend::Cpu, 1, 0}, 1)),
                     TextTable::num(fn.inference_time(cpu16, 1)),
                     TextTable::num(fn.inference_time({perf::Backend::Gpu, 0, 10}, 1)),
                     TextTable::num(fn.inference_time(gpu100, 1)),
                     TextTable::num(fn.init_cpu.mu, 2), TextTable::num(fn.init_gpu.mu, 2)});
  }
  catalog.print();

  std::cout << "\n=== Fig. 2: warm vs cold latency, 16-core CPU vs full GPU ===\n";
  TextTable fig2({"Model", "CPU warm (s)", "GPU warm (s)", "warm speedup", "CPU cold (s)",
                  "GPU cold (s)", "cold GPU/CPU"});
  for (const auto* name : {"HAP", "TG", "TRS"}) {
    const auto& fn = apps::model_by_name(name);
    const double cw = fn.inference_time(cpu16, 1);
    const double gw = fn.inference_time(gpu100, 1);
    const double cc = fn.init_cpu.mu + cw;
    const double gc = fn.init_gpu.mu + gw;
    fig2.add_row({name, TextTable::num(cw), TextTable::num(gw), TextTable::num(cw / gw, 1) + "x",
                  TextTable::num(cc, 2), TextTable::num(gc, 2),
                  TextTable::num(gc / cc, 2) + "x"});
  }
  fig2.print();

  const double price_ratio =
      pricing.per_second(gpu100) / pricing.per_second(cpu16);
  std::cout << "\nPrice: 16-core CPU $" << 16 * 0.034 << "/h, full GPU $3.06/h ("
            << TextTable::num(price_ratio, 2)
            << "x) — the paper quotes the GPU at ~8-16x the CPU tiers.\n"
            << "Shape check: warm GPU ~10x faster; cold GPU slower than cold CPU.\n";
  return 0;
}
