// Reproduces Fig. 15: online scaling decisions inside the bursty window —
// execution cost and SLA violations per policy. Paper shape: Aquatope,
// Orion and IceBreaker cost >= 1.41x SMIless; GrandSLAm is cheapest (its
// fleet cannot scale) but violates ~20%.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  exp::ExperimentGrid grid;
  grid.base = base_config(2.0, 60.0);
  grid.base.app = "wl3";
  grid.base.use_lstm = false;
  grid.base.trace.kind = "burst";
  grid.base.trace.quiet_rate = 0.5;
  grid.base.trace.peak_rate = 12.0;
  grid.base.trace.seed = 37;
  grid.policies = headline_policies();
  const auto cells = shared_runner().run(grid);

  std::cout << "=== Fig. 15: auto-scaling during the burst window ===\n";
  TextTable table({"Policy", "cost ($)", "vs SMIless", "violations", "peak pods"});
  const double base_cost = cell_for(cells, "smiless", "wl3").result.cost;
  for (const auto& cell : cells) {
    const auto& r = cell.result;
    int peak = 0;
    for (const auto& w : r.windows) peak = std::max(peak, w.instances_total);
    table.add_row({r.policy, TextTable::num(r.cost, 4),
                   TextTable::num(r.cost / base_cost, 2) + "x", pct(r.violation_ratio),
                   std::to_string(peak)});
  }
  table.print();
  std::cout << "\nShape check: SMIless best cost/violation trade-off; rigid fleets either\n"
               "violate (GrandSLAm-style) or overspend (keep-warm policies).\n";
  return 0;
}
