// Reproduces Fig. 15: online scaling decisions inside the bursty window —
// execution cost and SLA violations per policy. Paper shape: Aquatope,
// Orion and IceBreaker cost >= 1.41x SMIless; GrandSLAm is cheapest (its
// fleet cannot scale) but violates ~20%.
#include "bench/bench_common.hpp"

using namespace smiless;
using namespace smiless::bench;

int main() {
  const auto app = apps::make_voice_assistant();
  const std::vector<baselines::PolicyKind> kinds = {
      baselines::PolicyKind::Smiless,   baselines::PolicyKind::GrandSlam,
      baselines::PolicyKind::IceBreaker, baselines::PolicyKind::Orion,
      baselines::PolicyKind::Aquatope,
  };

  std::cout << "=== Fig. 15: auto-scaling during the burst window ===\n";
  TextTable table({"Policy", "cost ($)", "vs SMIless", "violations", "peak pods"});
  double base_cost = 0.0;
  std::vector<baselines::RunResult> results;
  for (const auto kind : kinds) {
    Rng rng(37);
    const auto trace = workload::generate_burst_window(0.5, 12.0, rng);
    results.push_back(run_cell(kind, app, trace, /*use_lstm=*/false));
    if (kind == baselines::PolicyKind::Smiless) base_cost = results.back().cost;
  }
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto& r = results[k];
    int peak = 0;
    for (const auto& w : r.windows) peak = std::max(peak, w.instances_total);
    table.add_row({baselines::policy_kind_name(kinds[k]), TextTable::num(r.cost, 4),
                   TextTable::num(r.cost / base_cost, 2) + "x", pct(r.violation_ratio),
                   std::to_string(peak)});
  }
  table.print();
  std::cout << "\nShape check: SMIless best cost/violation trade-off; rigid fleets either\n"
               "violate (GrandSLAm-style) or overspend (keep-warm policies).\n";
  return 0;
}
