// Reproduces Fig. 16: system overhead.
// (a) Strategy Optimizer time vs the longest path length (paper: < 20 ms at
//     12 functions, 10x-100x below other search methods — here exhaustive
//     enumeration and a constrained-shortest-path dynamic program);
// (b) the Auto-scaler's per-function solve time (paper: < 0.1 ms).
// Uses google-benchmark for robust timing, then prints the Fig. 16a series.
#include <benchmark/benchmark.h>

#include "apps/catalog.hpp"
#include "bench/bench_common.hpp"
#include "common/units.hpp"
#include "core/autoscaler.hpp"
#include "core/strategy_optimizer.hpp"
#include "core/workflow_manager.hpp"
#include "exp/runner.hpp"
#include "obs/audit.hpp"

using namespace smiless;

namespace {

std::vector<perf::FunctionPerf> chain_of(std::size_t n) {
  return apps::make_synthetic_pipeline(n, /*sla=*/0.25 * n).truth;
}

void BM_PathSearch(benchmark::State& state) {
  const auto chain = chain_of(static_cast<std::size_t>(state.range(0)));
  const double sla = 0.25 * static_cast<double>(state.range(0));
  core::StrategyOptimizer opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.optimize_chain(chain, 2.0, sla));
  }
}
BENCHMARK(BM_PathSearch)->DenseRange(2, 12, 2)->Unit(benchmark::kMicrosecond);

void BM_CspDynamicProgram(benchmark::State& state) {
  const auto chain = chain_of(static_cast<std::size_t>(state.range(0)));
  const double sla = 0.25 * static_cast<double>(state.range(0));
  core::StrategyOptimizer opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.optimize_chain_cspath(chain, 2.0, sla));
  }
}
BENCHMARK(BM_CspDynamicProgram)->DenseRange(2, 12, 2)->Unit(benchmark::kMicrosecond);

void BM_Exhaustive(benchmark::State& state) {
  const auto chain = chain_of(static_cast<std::size_t>(state.range(0)));
  const double sla = 0.25 * static_cast<double>(state.range(0));
  core::StrategyOptimizer opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.optimize_chain_exhaustive(chain, 2.0, sla));
  }
}
// 15^N nodes: cap at 6 functions to keep the binary brisk.
BENCHMARK(BM_Exhaustive)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

void BM_AutoscalerSolve(benchmark::State& state) {
  core::AutoScaler as(perf::default_config_space(), perf::Pricing{});
  const auto& fn = apps::model_by_name("IR");
  for (auto _ : state) {
    benchmark::DoNotOptimize(as.solve(fn, static_cast<int>(state.range(0)), 0.5, 1.0));
  }
}
BENCHMARK(BM_AutoscalerSolve)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_WorkflowManagerFullDag(benchmark::State& state) {
  const auto app = apps::make_amber_alert();
  core::WorkflowManager wm{core::StrategyOptimizer{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wm.optimize(app.dag, app.truth, 2.0, app.sla));
  }
}
BENCHMARK(BM_WorkflowManagerFullDag)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Fig. 16a companion table: search-space nodes explored per method.
  std::cout << "=== Fig. 16a: nodes explored vs longest path length ===\n";
  TextTable table({"path length", "path search", "CSP dynamic program", "exhaustive"});
  core::StrategyOptimizer opt;
  for (std::size_t n = 2; n <= 12; n += 2) {
    const auto chain = chain_of(n);
    const double sla = 0.25 * static_cast<double>(n);
    const auto fast = opt.optimize_chain(chain, 2.0, sla);
    const auto dp = opt.optimize_chain_cspath(chain, 2.0, sla);
    const std::string exhaustive =
        n <= 6 ? std::to_string(opt.optimize_chain_exhaustive(chain, 2.0, sla).nodes_explored)
               : "15^" + std::to_string(n);
    table.add_row({std::to_string(n), std::to_string(fast.nodes_explored),
                   std::to_string(dp.nodes_explored), exhaustive});
  }
  table.print();
  // §V-C1 discusses why the paper ships top-1: wider beams explore more
  // nodes for marginal cost gains. Quantify that trade-off.
  std::cout << "\n=== top-K trade-off (8-function chain, SLA 2 s) ===\n";
  TextTable topk({"K", "cost ($1e-4/invocation)", "nodes explored"});
  const auto chain8 = chain_of(8);
  for (int k : {1, 2, 4, 8, 16}) {
    core::OptimizerOptions oo;
    oo.top_k = k;
    core::StrategyOptimizer ok(oo);
    const auto sol = ok.optimize_chain(chain8, 2.0, 2.0);
    topk.add_row({std::to_string(k), TextTable::num(sol.cost * 1e4, 3),
                  std::to_string(sol.nodes_explored)});
  }
  topk.print();

  // Fig. 16 headline number in situ: run a short end-to-end simulation with
  // the audit log attached and report the policy's *self-profiled* solver
  // time — every reoptimize/autoscale solve as it happened inside the
  // serving loop, not a micro-benchmark of the solver in isolation.
  std::cout << "\n=== in-simulation solver overhead (policy self-profiling) ===\n";
  TextTable overhead({"app", "solver calls", "total (ms)", "mean/call (ms)", "decisions"});
  exp::Runner runner({/*threads=*/1, /*policy_threads=*/1});
  for (const std::string app_name : {"wl1", "wl2", "wl3"}) {
    exp::ExperimentConfig cfg;
    cfg.app = app_name;
    cfg.policy = "smiless";
    cfg.use_lstm = false;
    cfg.trace.kind = "regular";
    cfg.trace.interval = 3.0;
    cfg.trace.duration = 120.0;
    // Any non-empty artifact path makes the runner attach a Telemetry; the
    // bench only reads the in-memory audit log and writes nothing.
    cfg.obs.audit_out = "(in-memory)";
    const auto cell =
        exp::Runner::run_cell(cfg, runner.profiles(cfg.profile_seed), runner.policy_pool());
    const obs::AuditLog& audit = cell.telemetry->audit();
    const double total_ms = kMillisPerSecond * audit.total_solver_seconds();
    const double per_call =
        audit.solver_calls() == 0 ? 0.0
                                  : total_ms / static_cast<double>(audit.solver_calls());
    overhead.add_row({app_name, std::to_string(audit.solver_calls()),
                      TextTable::num(total_ms, 3), TextTable::num(per_call, 3),
                      std::to_string(audit.records().size())});
  }
  overhead.print();

  std::cout << "\n=== wall-clock timings (google-benchmark) ===\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
