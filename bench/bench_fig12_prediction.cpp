// Reproduces Fig. 12: accuracy of the online predictors, trained on the
// first segment of a long trace and evaluated on the rest (the paper trains
// on 1 hour and tests on 21 hours; scale with --duration).
// (a) invocation-number prediction: underestimation rate and MAPE of
//     SMIless' LSTM bucket classifier vs XGBoost, ARIMA and FIP
//     (paper: SMIless ~3% underestimation, best of the four);
// (b) inter-arrival prediction: MAPE and overestimation rate of the
//     dual-input LSTM vs the single-input SMIless-S and the baselines
//     (paper: MAPE 2.45%, overestimation < 0.64%, ~10x under SMIless-S).
#include <memory>

#include "bench/bench_common.hpp"
#include "math/stats.hpp"
#include "predictor/classic.hpp"
#include "predictor/gbt.hpp"
#include "predictor/invocation_classifier.hpp"
#include "predictor/lstm_regressor.hpp"

using namespace smiless;
using namespace smiless::bench;

namespace {

struct Eval {
  double mape = 0.0;
  double under = 0.0;
  double over = 0.0;
};

Eval walk_forward(const predictor::SeriesPredictor& p, std::span<const double> series,
                  std::size_t train_len) {
  std::vector<double> truth, pred;
  for (std::size_t t = train_len; t < series.size(); ++t) {
    truth.push_back(series[t]);
    pred.push_back(p.predict_next(series.subspan(0, t)));
  }
  return {math::mape(truth, pred), math::underestimation_rate(truth, pred),
          math::overestimation_rate(truth, pred)};
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  // "1 h train / 21 h test" scaled: 1200 train windows, 4x that for test.
  const auto train_len = static_cast<std::size_t>(bench_duration(1200.0));
  const std::size_t total_len = 5 * train_len;

  Rng rng(99);
  auto options = workload::preset_for_workload("WL2", static_cast<double>(total_len));
  options.burst_start_prob = 0.008;   // variance-to-mean ratio > 2 (§VII-C2)
  options.burst_magnitude = 10.0;
  const auto trace = workload::generate_trace(options, rng);
  const auto counts = trace.counts_as_double();
  std::cout << "Trace: " << counts.size() << " windows, variance-to-mean ratio "
            << TextTable::num(math::variance_to_mean(counts), 2) << " (paper: > 2)\n\n";

  const std::span<const double> count_span(counts);
  const std::span<const double> train = count_span.subspan(0, train_len);

  std::cout << "=== Fig. 12a: invocation-number prediction ===\n";
  TextTable fig_a({"Predictor", "underestimation", "MAPE (%)"});

  {  // SMIless' LSTM bucket classifier (upper-bound + compensation).
    predictor::InvocationClassifier::Options co;
    co.bucket_size = 2;
    predictor::InvocationClassifier cls(co);
    cls.fit(train);
    std::vector<double> truth, pred;
    for (std::size_t t = train_len; t < counts.size(); ++t) {
      truth.push_back(counts[t]);
      pred.push_back(cls.predict_next(count_span.subspan(0, t)));
    }
    fig_a.add_row({"SMIless (LSTM buckets)", pct(math::underestimation_rate(truth, pred)),
                   TextTable::num(math::mape(truth, pred), 1)});
  }
  {
    predictor::GbtPredictor gbt;
    gbt.fit(train);
    const auto e = walk_forward(gbt, count_span, train_len);
    fig_a.add_row({"XGBoost", pct(e.under), TextTable::num(e.mape, 1)});
  }
  {
    predictor::ArimaPredictor arima;
    arima.fit(train);
    const auto e = walk_forward(arima, count_span, train_len);
    fig_a.add_row({"ARIMA", pct(e.under), TextTable::num(e.mape, 1)});
  }
  {
    predictor::FipPredictor fip;
    fip.fit(train);
    const auto e = walk_forward(fip, count_span, train_len);
    fig_a.add_row({"FIP (IceBreaker)", pct(e.under), TextTable::num(e.mape, 1)});
  }
  fig_a.print();

  std::cout << "\n=== Fig. 12b: inter-arrival time prediction ===\n"
            << "(piecewise-regular gaps: production arrival processes are near-periodic\n"
            << " within phases — that regularity is what makes the paper's 2.45% MAPE\n"
            << " possible; i.i.d. Poisson gaps are unpredictable for any model)\n";
  // Phases of 100-300 gaps, each with a fixed interval and 5% jitter; the
  // auxiliary channel (arrival rate proxy) reveals the active phase.
  std::vector<double> gaps, aux;
  {
    Rng grng(123);
    const double intervals[] = {1.5, 3.0, 6.0, 10.0};
    while (gaps.size() < 4000) {
      const double interval = intervals[grng.uniform_int(0, 3)];
      const int len = grng.uniform_int(100, 300);
      for (int i = 0; i < len; ++i) {
        gaps.push_back(grng.truncated_normal(interval, 0.05 * interval, 0.2 * interval));
        aux.push_back(1.0 / interval);
      }
    }
  }
  const std::size_t ia_train = gaps.size() / 5;
  const std::span<const double> gap_span(gaps);
  const std::span<const double> aux_span(aux);

  TextTable fig_b({"Predictor", "MAPE (%)", "overestimation"});
  {
    predictor::LstmOptions lo;
    lo.over_weight = 4.0;  // the paper's design suppresses overestimation
    predictor::DualLstmRegressor dual(lo);
    dual.fit(gap_span.subspan(0, ia_train), aux_span.subspan(0, ia_train));
    std::vector<double> truth, pred;
    for (std::size_t t = ia_train; t < gaps.size(); ++t) {
      truth.push_back(gaps[t]);
      pred.push_back(dual.predict_next(gap_span.subspan(0, t), aux_span.subspan(0, t)));
    }
    fig_b.add_row({"SMIless (dual LSTM)", TextTable::num(math::mape(truth, pred), 1),
                   pct(math::overestimation_rate(truth, pred))});
  }
  {
    predictor::LstmOptions lo;  // symmetric loss, single input — SMIless-S
    predictor::LstmRegressor single(lo);
    single.fit(gap_span.subspan(0, ia_train));
    const auto e = walk_forward(single, gap_span, ia_train);
    fig_b.add_row({"SMIless-S (single LSTM)", TextTable::num(e.mape, 1), pct(e.over)});
  }
  {
    predictor::ArimaPredictor arima;
    arima.fit(gap_span.subspan(0, ia_train));
    const auto e = walk_forward(arima, gap_span, ia_train);
    fig_b.add_row({"ARIMA", TextTable::num(e.mape, 1), pct(e.over)});
  }
  {
    predictor::GbtPredictor gbt;
    gbt.fit(gap_span.subspan(0, ia_train));
    const auto e = walk_forward(gbt, gap_span, ia_train);
    fig_b.add_row({"XGBoost", TextTable::num(e.mape, 1), pct(e.over)});
  }
  {
    predictor::FipPredictor fip;
    fip.fit(gap_span.subspan(0, ia_train));
    const auto e = walk_forward(fip, gap_span, ia_train);
    fig_b.add_row({"FIP (IceBreaker)", TextTable::num(e.mape, 1), pct(e.over)});
  }
  fig_b.print();
  std::cout << "\nShape check: the bucket classifier has the lowest underestimation;\n"
               "the dual-input LSTM overestimates less than SMIless-S.\n";
  return 0;
}
