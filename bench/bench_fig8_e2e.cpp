// Reproduces Fig. 8: (a) overall execution cost of SMIless vs GrandSLAm,
// IceBreaker, Orion, Aquatope and OPT on the three DAG workloads under
// Azure-like traces; (b) the E2E latency distribution per policy.
// Paper shape: SMIless cheapest of the online policies (up to 5.73x under
// IceBreaker, 2.46x under GrandSLAm, ~2x under Orion) with no violations;
// OPT ~1/1.5 of SMIless; Orion/Aquatope violate up to ~40%.
#include "bench/bench_common.hpp"
#include "math/stats.hpp"

using namespace smiless;
using namespace smiless::bench;

int main() {
  const double duration = bench_duration();
  const auto workloads = apps::make_all_workloads(2.0);
  const std::vector<baselines::PolicyKind> kinds = {
      baselines::PolicyKind::Smiless,   baselines::PolicyKind::GrandSlam,
      baselines::PolicyKind::IceBreaker, baselines::PolicyKind::Orion,
      baselines::PolicyKind::Aquatope,  baselines::PolicyKind::Opt,
  };

  std::cout << "=== Fig. 8a: overall execution cost (trace " << duration << " s/app) ===\n";
  TextTable cost_table({"Policy", "WL1 ($)", "WL2 ($)", "WL3 ($)", "total ($)", "vs SMIless"});
  std::cout << "=== collecting runs (this also feeds Fig. 8b) ===\n";

  std::vector<std::vector<baselines::RunResult>> results(kinds.size());
  double smiless_total = 0.0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const auto& app : workloads) {
      const auto trace = trace_for(app, duration);
      results[k].push_back(run_cell(kinds[k], app, trace));
    }
  }
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    double total = 0.0;
    for (const auto& r : results[k]) total += r.cost;
    if (kinds[k] == baselines::PolicyKind::Smiless) smiless_total = total;
  }
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    double total = 0.0;
    std::vector<std::string> row{baselines::policy_kind_name(kinds[k])};
    for (const auto& r : results[k]) {
      row.push_back(TextTable::num(r.cost, 4));
      total += r.cost;
    }
    row.push_back(TextTable::num(total, 4));
    row.push_back(TextTable::num(total / smiless_total, 2) + "x");
    cost_table.add_row(row);
  }
  cost_table.print();

  std::cout << "\n=== Fig. 8b: E2E latency distribution across all workloads ===\n";
  TextTable lat_table({"Policy", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)",
                       "SLA violations"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::vector<double> e2e;
    long submitted = 0, violated = 0;
    for (const auto& r : results[k]) {
      e2e.insert(e2e.end(), r.e2e.begin(), r.e2e.end());
      submitted += r.submitted;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
    }
    lat_table.add_row({baselines::policy_kind_name(kinds[k]),
                       TextTable::num(math::percentile(e2e, 50), 2),
                       TextTable::num(math::percentile(e2e, 90), 2),
                       TextTable::num(math::percentile(e2e, 99), 2),
                       TextTable::num(math::percentile(e2e, 100), 2),
                       pct(static_cast<double>(violated) / submitted)});
  }
  lat_table.print();

  // The paper's actual deployment: all three applications share the one
  // 8-machine cluster simultaneously (dedicated load generator each), so a
  // policy's fleets contend for cores and GPU slices.
  std::cout << "\n=== Fig. 8 (co-located): all workloads on one cluster per policy ===\n";
  TextTable co_table({"Policy", "total ($)", "vs SMIless", "violations"});
  double co_base = 0.0;
  for (const auto kind : kinds) {
    std::vector<workload::Trace> traces;
    traces.reserve(workloads.size());
    for (const auto& app : workloads) traces.push_back(trace_for(app, duration));
    std::vector<baselines::ColocatedApp> deployment;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      baselines::PolicySettings settings;
      settings.pool = shared_pool();
      settings.oracle_trace = &traces[i];
      deployment.push_back({workloads[i], &traces[i],
                            baselines::make_policy(kind, workloads[i], shared_profiles(),
                                                   settings)});
    }
    baselines::ExperimentOptions options;
    const auto results_co = baselines::run_colocated(std::move(deployment), options);
    double total = 0.0;
    long violated = 0, submitted = 0;
    for (const auto& r : results_co) {
      total += r.cost;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      submitted += r.submitted;
    }
    if (kind == baselines::PolicyKind::Smiless) co_base = total;
    co_table.add_row({baselines::policy_kind_name(kind), TextTable::num(total, 4),
                      TextTable::num(total / co_base, 2) + "x",
                      pct(static_cast<double>(violated) / submitted)});
  }
  co_table.print();

  std::cout << "\nShape check: SMIless cheapest online policy; OPT below SMIless;\n"
               "IceBreaker/GrandSLAm multiples above; Orion/Aquatope violate heavily.\n";
  return 0;
}
