// Reproduces Fig. 8: (a) overall execution cost of SMIless vs GrandSLAm,
// IceBreaker, Orion, Aquatope and OPT on the three DAG workloads under
// Azure-like traces; (b) the E2E latency distribution per policy.
// Paper shape: SMIless cheapest of the online policies (up to 5.73x under
// IceBreaker, 2.46x under GrandSLAm, ~2x under Orion) with no violations;
// OPT ~1/1.5 of SMIless; Orion/Aquatope violate up to ~40%.
#include "bench/bench_common.hpp"
#include "math/stats.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration();

  exp::ExperimentGrid grid;
  grid.base = base_config(2.0, duration);
  grid.policies = headline_policies(/*with_opt=*/true);
  grid.apps = workload_names();

  std::cout << "=== Fig. 8: " << grid.cell_count() << "-cell sweep (trace " << duration
            << " s/app) ===\n";
  const auto cells = shared_runner().run(grid);

  std::cout << "\n=== Fig. 8a: overall execution cost ===\n";
  TextTable cost_table({"Policy", "WL1 ($)", "WL2 ($)", "WL3 ($)", "total ($)", "vs SMIless"});
  double smiless_total = 0.0;
  for (const auto& policy : grid.policies) {
    double total = 0.0;
    for (const auto& app : grid.apps) total += cell_for(cells, policy, app).result.cost;
    if (policy == "smiless") smiless_total = total;
  }
  for (const auto& policy : grid.policies) {
    double total = 0.0;
    std::vector<std::string> row{policy_display(policy)};
    for (const auto& app : grid.apps) {
      const auto& r = cell_for(cells, policy, app).result;
      row.push_back(TextTable::num(r.cost, 4));
      total += r.cost;
    }
    row.push_back(TextTable::num(total, 4));
    row.push_back(TextTable::num(total / smiless_total, 2) + "x");
    cost_table.add_row(row);
  }
  cost_table.print();

  std::cout << "\n=== Fig. 8b: E2E latency distribution across all workloads ===\n";
  TextTable lat_table({"Policy", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)",
                       "SLA violations"});
  for (const auto& policy : grid.policies) {
    std::vector<double> e2e;
    long submitted = 0, violated = 0;
    for (const auto& app : grid.apps) {
      const auto& r = cell_for(cells, policy, app).result;
      e2e.insert(e2e.end(), r.e2e.begin(), r.e2e.end());
      submitted += r.submitted;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
    }
    lat_table.add_row({policy_display(policy), TextTable::num(math::tail_latency(e2e, 50), 2),
                       TextTable::num(math::tail_latency(e2e, 90), 2),
                       TextTable::num(math::tail_latency(e2e, 99), 2),
                       TextTable::num(math::tail_latency(e2e, 100), 2),
                       pct(static_cast<double>(violated) / submitted)});
  }
  lat_table.print();

  // The paper's actual deployment: all three applications share the one
  // 8-machine cluster simultaneously (dedicated load generator each), so a
  // policy's fleets contend for cores and GPU slices. Co-location couples
  // the apps inside one engine, so it runs through run_colocated directly;
  // the sweep layer supplies the profiles, traces and solver pool.
  std::cout << "\n=== Fig. 8 (co-located): all workloads on one cluster per policy ===\n";
  TextTable co_table({"Policy", "total ($)", "vs SMIless", "violations"});
  double co_base = 0.0;
  for (const auto& policy : grid.policies) {
    const auto kind = *baselines::parse_policy_kind(policy);
    std::vector<apps::App> workloads;
    std::vector<workload::Trace> traces;
    for (const auto& name : grid.apps) {
      auto cfg = grid.base;
      cfg.app = name;
      workloads.push_back(exp::resolve_app(cfg));
      traces.push_back(exp::build_trace(cfg, workloads.back()));
    }
    std::vector<baselines::ColocatedApp> deployment;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      baselines::PolicySettings settings;
      settings.pool = shared_runner().policy_pool();
      settings.oracle_trace = &traces[i];
      deployment.push_back({workloads[i], &traces[i],
                            baselines::make_policy(kind, workloads[i],
                                                   shared_runner().profiles(2024), settings)});
    }
    baselines::ExperimentOptions options;
    const auto results_co = baselines::run_colocated(std::move(deployment), options);
    double total = 0.0;
    long violated = 0, submitted = 0;
    for (const auto& r : results_co) {
      total += r.cost;
      violated += static_cast<long>(r.violation_ratio * r.submitted + 0.5);
      submitted += r.submitted;
    }
    if (policy == "smiless") co_base = total;
    co_table.add_row({policy_display(policy), TextTable::num(total, 4),
                      TextTable::num(total / co_base, 2) + "x",
                      pct(static_cast<double>(violated) / submitted)});
  }
  co_table.print();

  std::cout << "\nShape check: SMIless cheapest online policy; OPT below SMIless;\n"
               "IceBreaker/GrandSLAm multiples above; Orion/Aquatope violate heavily.\n";
  return 0;
}
