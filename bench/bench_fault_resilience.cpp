// Fault-resilience study: goodput and recovery cost per policy under
// injected failures. Sweeps the container init-failure probability and adds
// one mid-run machine crash; every run reports goodput (completed /
// submitted), retries, evictions and timeouts next to the usual cost and
// latency books. Expected shape: at p = 0 every policy reproduces its
// fault-free numbers exactly (same seed, same trajectory); under faults,
// policies with warm fleets (GrandSLAm) ride through init failures while
// cold-start-heavy ones pay retries; goodput should stay >= 99% for SMIless
// at p = 0.05 with one crash.
#include "bench/bench_common.hpp"
#include "math/stats.hpp"

using namespace smiless;
using namespace smiless::bench;

namespace {

baselines::RunResult run_faulty(baselines::PolicyKind kind, const apps::App& app,
                                const workload::Trace& trace,
                                const faults::FaultSpec& spec) {
  baselines::PolicySettings settings;
  settings.use_lstm = false;  // fast statistical predictors; same for all cells
  settings.pool = shared_pool();
  settings.oracle_trace = &trace;
  baselines::ExperimentOptions options;
  options.faults = spec;
  options.platform.request_timeout = 60.0;  // a stuck request fails, not hangs
  return baselines::run_experiment(
      app, trace, baselines::make_policy(kind, app, shared_profiles(), settings), options);
}

}  // namespace

int main() {
  const auto app = apps::make_voice_assistant();
  const double duration = bench_duration(300.0);
  const auto trace = trace_for(app, duration);

  const std::vector<baselines::PolicyKind> kinds = {
      baselines::PolicyKind::Smiless,
      baselines::PolicyKind::GrandSlam,
      baselines::PolicyKind::IceBreaker,
      baselines::PolicyKind::Orion,
  };
  const std::vector<double> init_ps = {0.0, 0.02, 0.05, 0.10};

  std::cout << "=== Fault resilience: init-failure sweep + one machine crash ===\n";
  std::cout << "app " << app.name << ", " << trace.total_invocations() << " requests over "
            << trace.counts.size() << " s; crash: machine 1 down at t=" << duration / 3
            << " for 45 s (except the p=0 row, which is fault-free)\n\n";

  TextTable table({"policy", "init p", "goodput", "failed", "cost ($)", "p99 E2E (s)",
                   "retries", "evictions", "timeouts", "init fails"});
  for (const auto kind : kinds) {
    for (const double p : init_ps) {
      faults::FaultSpec spec;
      spec.init_failure_prob = p;
      if (p > 0.0) spec.crashes.push_back({/*machine=*/1, /*at=*/duration / 3,
                                           /*duration=*/45.0});
      const auto r = run_faulty(kind, app, trace, spec);
      table.add_row({r.policy, TextTable::num(p, 2), pct(r.goodput()),
                     std::to_string(r.failed), TextTable::num(r.cost, 4),
                     TextTable::num(r.e2e.empty() ? 0.0 : math::percentile(r.e2e, 99), 2),
                     std::to_string(r.retries), std::to_string(r.evictions),
                     std::to_string(r.timeouts), std::to_string(r.init_failures)});
    }
  }
  table.print();
  std::cout << "\nShape check: p=0 rows match the fault-free benches bit-for-bit; goodput\n"
               "degrades gracefully with p and recovers after the crash window.\n";
  return 0;
}
