// Fault-resilience study: goodput and recovery cost per policy under
// injected failures. Sweeps the container init-failure probability and adds
// one mid-run machine crash; every run reports goodput (completed /
// submitted), retries, evictions and timeouts next to the usual cost and
// latency books. Expected shape: at p = 0 every policy reproduces its
// fault-free numbers exactly (same seed, same trajectory); under faults,
// policies with warm fleets (GrandSLAm) ride through init failures while
// cold-start-heavy ones pay retries; goodput should stay >= 99% for SMIless
// at p = 0.05 with one crash.
#include "bench/bench_common.hpp"
#include "math/stats.hpp"

using namespace smiless;
using namespace smiless::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const double duration = bench_duration(300.0);

  exp::ExperimentGrid grid;
  grid.base = base_config(2.0, duration);
  grid.base.app = "wl3";
  grid.base.use_lstm = false;  // fast statistical predictors; same for all cells
  grid.base.platform.request_timeout = 60.0;  // a stuck request fails, not hangs
  grid.policies = {"smiless", "grandslam", "icebreaker", "orion"};
  grid.init_failure_probs = {0.0, 0.02, 0.05, 0.10};

  // The crash rider is conditional on faults being on, so the p = 0 column
  // stays bit-identical to the fault-free benches: expand the grid, then
  // attach the outage to the faulty cells.
  auto cells_cfg = grid.expand();
  for (auto& cfg : cells_cfg)
    if (cfg.faults.init_failure_prob > 0.0)
      cfg.faults.crashes.push_back({/*machine=*/1, /*at=*/duration / 3, /*duration=*/45.0});

  const auto cells = shared_runner().run(cells_cfg);

  std::cout << "=== Fault resilience: init-failure sweep + one machine crash ===\n";
  std::cout << "app wl3, trace " << duration << " s; crash: machine 1 down at t="
            << duration / 3 << " for 45 s (except the p=0 rows, which are fault-free)\n\n";

  TextTable table({"policy", "init p", "goodput", "failed", "cost ($)", "p99 E2E (s)",
                   "retries", "evictions", "timeouts", "init fails"});
  for (const auto& cell : cells) {
    const auto& r = cell.result;
    table.add_row({r.policy, TextTable::num(cell.config.faults.init_failure_prob, 2),
                   pct(r.goodput()), std::to_string(r.failed), TextTable::num(r.cost, 4),
                   TextTable::num(math::tail_latency(r.e2e, 99), 2),
                   std::to_string(r.retries), std::to_string(r.evictions),
                   std::to_string(r.timeouts), std::to_string(r.init_failures)});
  }
  table.print();
  std::cout << "\nShape check: p=0 rows match the fault-free benches bit-for-bit; goodput\n"
               "degrades gracefully with p and recovers after the crash window.\n";
  return 0;
}
